//! The resident query engine: N per-shard [`IncrementalDedup`]
//! collapses behind one reader-writer core lock, a generation-keyed
//! query cache, and incremental corpus statistics.
//!
//! # Sharding
//!
//! Records are routed to shards by [`ShardRouter`]: a pure function of
//! the match-field text whose key agrees with the sufficient
//! predicate's blocking partition, so **no collapse group ever spans
//! two shards** (see `crate::shard` for the soundness argument). That
//! static partition is what makes the whole design equivalence-
//! preserving: each shard runs the ordinary incremental collapse over
//! its own records, and a TopK answer is a cross-shard merge of
//! per-shard group lists — byte-identical to a single unsharded engine
//! over the same stream, at every shard count (proved by
//! `tests/serve_shards.rs` and `tests/prop_shards.rs`).
//!
//! Concurrency: ingest takes the core lock in **read** mode plus only
//! the mutexes of the shards it touches, so ingests for different
//! shards proceed in parallel. Queries take the core lock in **write**
//! mode, flush every pending record, and merge. The lock order is
//! core → schema → shard mutexes (ascending index) → cache, everywhere.
//!
//! # Collapse timing
//!
//! Ingested records are tokenized immediately (once — the shared
//! tokenize-once path of [`crate::corpus`]) but merged into the
//! first-level collapse *lazily, at the next query*: the sufficient
//! predicate depends on corpus statistics, and deferring the merge to
//! query time means every record is collapsed under the newest
//! statistics available. Corpus statistics are folded at flush rather
//! than at ingest (the fold is order-independent, so the folded content
//! is identical); the only observable consequence is that the
//! `distinct_values` stat reflects the last flush, not the last ingest.
//! Records collapsed by an *earlier* query keep their insert-time
//! decisions — the documented [`IncrementalDedup`] drift caveat.
//!
//! # Query cache
//!
//! Responses are cached keyed on the query parameters; every entry also
//! remembers the ingest generation it was computed at. Ingestion bumps
//! the generation and clears the cache, so a repeated TopK refresh on a
//! quiet stream is a hash lookup — O(1), without touching the core lock
//! at all — while any ingestion invalidates exactly once. The
//! generation check makes staleness impossible even if an eviction
//! policy ever retains entries across ingests.

use std::collections::{HashMap, HashSet};
use std::path::Path;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::{Duration, Instant};

use topk_approx::{ApproxGroup, Population, SampleEntry, Sketch};
use topk_core::{IncrementalDedup, IncrementalState, Parallelism, TopKRankQuery};
use topk_graph::UnionFind;
use topk_obs::SloTracker;
use topk_records::{FieldId, TokenizedRecord};
use topk_text::CorpusStats;

use crate::corpus::stack_from_stats;
use crate::introspection::{ApproxProfile, ProfileRing, QueryProfile, ShardProfile};
use crate::journal::{self, JournalSet, Row, SetRecovery};
use crate::json::{obj, Json};
use crate::metrics::Metrics;
use crate::overload::{self, OverloadControl, Transition};
use crate::replication::{ReplLog, ReplicaStatus, Role, REPL_LOG_CAP};
use crate::shard::ShardRouter;
use crate::snapshot;

/// Maximum cached responses before the cache is wiped (entries are a few
/// hundred bytes each; distinct live query shapes are few).
const CACHE_CAP: usize = 128;

/// Profiles of explained queries retained for the `profiles` protocol
/// command (a flight recorder, not a log — oldest entries fall off).
const PROFILE_RING_CAP: usize = 64;

/// Engine construction parameters (fixed for the server's lifetime).
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Schema field names, when fixed up front. `None` lets the first
    /// ingested record (or a restore) fix the arity, with fields named
    /// `col0`, `col1`, ...
    pub fields: Option<Vec<String>>,
    /// Name of the match field (`None` = first field).
    pub name_field: Option<String>,
    /// Rare-word document-frequency cap for the sufficient predicate.
    pub max_df: u32,
    /// 3-gram overlap fraction for the necessary predicate.
    pub min_overlap: f64,
    /// Thread budget for the query pipeline stages and the per-shard
    /// flush.
    pub parallelism: Parallelism,
    /// Number of engine shards (at least 1). Records are routed by
    /// blocking partition ([`ShardRouter`]), so answers are identical at
    /// every shard count; more shards buy concurrent ingest and
    /// parallel collapse on multi-core machines.
    pub shards: usize,
    /// p99 latency objective for the SLO tracker, µs (`health`
    /// command; `docs/OBSERVABILITY.md`, *SLOs & health*).
    pub slo_p99_micros: u64,
    /// Availability objective in parts per million (999_000 = 99.9%).
    pub slo_availability_ppm: u64,
    /// Resident-memory budget in estimated bytes (0 = unlimited).
    /// Ingests that would cross it are refused with
    /// `err:"memory_pressure"`; crossing the 80% high watermark enters
    /// brownout (`docs/ROBUSTNESS.md`, *Overload control*).
    pub memory_budget_bytes: u64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            fields: None,
            name_field: None,
            max_df: 30,
            min_overlap: 0.6,
            parallelism: Parallelism::auto(),
            shards: 1,
            slo_p99_micros: 50_000,
            slo_availability_ppm: 999_000,
            memory_budget_bytes: 0,
        }
    }
}

struct CacheEntry {
    generation: u64,
    body: Json,
}

/// Resolved schema; separate from [`Core`] so concurrent ingests can
/// double-check it under a cheap read lock.
struct Schema {
    /// Field names; `None` until the first record arrives.
    fields: Option<Vec<String>>,
    /// Match-field index (valid once `fields` is set).
    field: FieldId,
}

/// One group of one shard, as the cross-shard merge sees it. `Copy` so
/// merge candidates detach from the shard borrow.
#[derive(Debug, Clone, Copy)]
struct GroupView {
    weight: f64,
    size: u32,
    /// Representative's global record id — the cross-shard tie-break.
    rep_gid: u32,
    /// Representative's local id, for fetching its text.
    rep_local: u32,
}

/// One engine shard: its own collapse, its own pending queue.
struct Shard {
    inc: IncrementalDedup,
    /// Global record id of each local id; strictly increasing, so local
    /// id order equals global ingest order restricted to this shard.
    gids: Vec<u32>,
    /// Ingested but not yet collapsed records, tagged with their global
    /// record id (rid) so flush can restore the global ingest order.
    pending: Vec<(u64, TokenizedRecord)>,
    /// Group views sorted (weight desc, rep asc), rebuilt lazily after
    /// the collapse changes.
    groups: Option<Vec<GroupView>>,
    /// Bottom-m sample sketch over this shard's collapsed records,
    /// maintained at flush; merged across shards at approximate-query
    /// time (`docs/APPROX.md`).
    sample: Sketch,
}

/// Everything behind the core reader-writer lock.
struct Core {
    shards: Vec<Mutex<Shard>>,
    /// gid -> (shard index, local id).
    global: Vec<(u32, u32)>,
    /// Document frequencies over distinct match-field values, folded at
    /// flush (`seen` holds hashes of values already counted).
    stats: CorpusStats,
    seen: HashSet<u64>,
    /// All collapsed records in gid order, gathered for TopR when there
    /// is more than one shard; invalidated by every flush.
    topr_toks: Option<Vec<TokenizedRecord>>,
    /// Largest single-record weight ever collapsed — the bound the
    /// approximate estimator's fallback interval stands on.
    max_weight: f64,
}

/// Thread-safe resident engine; the server shares one behind an `Arc`.
pub struct Engine {
    cfg: EngineConfig,
    schema: RwLock<Schema>,
    core: RwLock<Core>,
    cache: Mutex<HashMap<String, CacheEntry>>,
    /// Total records ever accepted (monotone; restored from snapshots).
    generation: AtomicU64,
    /// Next global record id to assign at ingest.
    next_rid: AtomicU64,
    /// Write-ahead ingest journal, when durability is enabled
    /// (`topk serve --journal`): one segment per shard, appended before
    /// an ingest is applied.
    journal: Option<JournalSet>,
    /// Per-shard (records, groups, sample) gauges, refreshed at flush.
    shard_gauges: Vec<(Arc<AtomicI64>, Arc<AtomicI64>, Arc<AtomicI64>)>,
    /// Per-shard journal-segment byte gauges, registered by
    /// [`Self::attach_journal`] and refreshed at exposition time.
    journal_gauges: Vec<Arc<AtomicI64>>,
    /// Per-window `[p99_micros, availability_ppm, budget_ppm]` gauges,
    /// refreshed from [`Self::slo`] at exposition time.
    slo_gauges: Vec<[Arc<AtomicI64>; 3]>,
    /// `topk_uptime_seconds`, refreshed at exposition time.
    uptime_gauge: Arc<AtomicI64>,
    /// Engine creation time (the `uptime_seconds` epoch).
    start: Instant,
    /// Rolling-window SLO tracker behind the `health` command; the
    /// server records one sample per served request.
    slo: SloTracker,
    /// Profiles of explained queries, drained by the `profiles`
    /// protocol command.
    profiles: ProfileRing,
    /// This server's replication role (primary by default; `--replica-of`
    /// makes it a replica at startup).
    role: AtomicU8,
    /// Replication epoch: starts at 1, bumped by every promotion. The
    /// handshake compares epochs both ways to refuse stale leaders.
    epoch: AtomicU64,
    /// In-memory window of encoded ingest entries, published under the
    /// core read guard so log order equals apply order; `replicate`
    /// streams tail it.
    repl_log: ReplLog,
    /// Replica-side progress (meaningful while the role is replica).
    replica: Mutex<ReplicaStatus>,
    /// Serializes replica applies against promotion: `promote` holds it
    /// while flipping the role, so no half-applied entry can straddle
    /// the role change.
    apply_gate: Mutex<()>,
    /// `topk_epoch`, `topk_replica_connected`, `topk_replica_lag_entries`,
    /// `topk_replica_lag_ms` — refreshed at exposition time.
    repl_gauges: [Arc<AtomicI64>; 4],
    /// Overload control: memory accounting/budget, brownout state, and
    /// per-class query-cost EWMAs (`crate::overload`).
    overload: OverloadControl,
    /// Counters and latency histograms (lock-free, shared with the
    /// server's stats command and shutdown log).
    pub metrics: Metrics,
}

impl Engine {
    /// Fresh engine with no records.
    pub fn new(cfg: EngineConfig) -> Result<Engine, String> {
        if cfg.shards == 0 {
            return Err("shard count must be at least 1".into());
        }
        let field = match (&cfg.fields, &cfg.name_field) {
            (Some(fields), Some(name)) => FieldId(
                fields
                    .iter()
                    .position(|f| f == name)
                    .ok_or_else(|| format!("no field named `{name}` in --fields"))?,
            ),
            _ => FieldId(0),
        };
        let metrics = Metrics::new();
        let shard_gauges = (0..cfg.shards)
            .map(|i| {
                (
                    metrics.registry().gauge(&format!("topk_shard_{i}_records")),
                    metrics.registry().gauge(&format!("topk_shard_{i}_groups")),
                    metrics.registry().gauge(&format!("topk_shard_{i}_sample")),
                )
            })
            .collect();
        let slo_gauges = topk_obs::slo::WINDOWS
            .iter()
            .map(|(_, w)| {
                [
                    metrics
                        .registry()
                        .gauge(&format!("topk_slo_{w}_p99_micros")),
                    metrics
                        .registry()
                        .gauge(&format!("topk_slo_{w}_availability_ppm")),
                    metrics
                        .registry()
                        .gauge(&format!("topk_slo_{w}_error_budget_remaining_ppm")),
                ]
            })
            .collect();
        let uptime_gauge = metrics.registry().gauge("topk_uptime_seconds");
        let repl_gauges = [
            metrics.registry().gauge("topk_epoch"),
            metrics.registry().gauge("topk_replica_connected"),
            metrics.registry().gauge("topk_replica_lag_entries"),
            metrics.registry().gauge("topk_replica_lag_ms"),
        ];
        repl_gauges[0].store(1, Ordering::Relaxed);
        let overload =
            OverloadControl::new(cfg.memory_budget_bytes, cfg.shards, metrics.registry());
        let shards = (0..cfg.shards)
            .map(|_| {
                Mutex::new(Shard {
                    inc: IncrementalDedup::new(),
                    gids: Vec::new(),
                    pending: Vec::new(),
                    groups: None,
                    sample: Sketch::with_defaults(),
                })
            })
            .collect();
        Ok(Engine {
            schema: RwLock::new(Schema {
                fields: cfg.fields.clone(),
                field,
            }),
            core: RwLock::new(Core {
                shards,
                global: Vec::new(),
                stats: CorpusStats::new(),
                seen: HashSet::new(),
                topr_toks: None,
                max_weight: 0.0,
            }),
            cache: Mutex::new(HashMap::new()),
            generation: AtomicU64::new(0),
            next_rid: AtomicU64::new(0),
            journal: None,
            shard_gauges,
            journal_gauges: Vec::new(),
            slo_gauges,
            uptime_gauge,
            start: Instant::now(),
            slo: SloTracker::new(cfg.slo_p99_micros, cfg.slo_availability_ppm),
            profiles: ProfileRing::new(PROFILE_RING_CAP),
            role: AtomicU8::new(Role::Primary.as_u8()),
            epoch: AtomicU64::new(1),
            repl_log: ReplLog::new(REPL_LOG_CAP),
            replica: Mutex::new(ReplicaStatus::default()),
            apply_gate: Mutex::new(()),
            repl_gauges,
            overload,
            metrics,
            cfg,
        })
    }

    // ---- lock plumbing (poison-recovering) ------------------------------

    fn recover_poison(&self) {
        Metrics::incr(&self.metrics.lock_recoveries);
        topk_obs::warn!("engine lock poisoned by a panicked handler; recovering");
    }

    fn read_core(&self) -> RwLockReadGuard<'_, Core> {
        self.core.read().unwrap_or_else(|p| {
            self.recover_poison();
            p.into_inner()
        })
    }

    fn write_core(&self) -> RwLockWriteGuard<'_, Core> {
        self.core.write().unwrap_or_else(|p| {
            self.recover_poison();
            p.into_inner()
        })
    }

    fn read_schema(&self) -> RwLockReadGuard<'_, Schema> {
        self.schema.read().unwrap_or_else(|p| {
            self.recover_poison();
            p.into_inner()
        })
    }

    fn write_schema(&self) -> RwLockWriteGuard<'_, Schema> {
        self.schema.write().unwrap_or_else(|p| {
            self.recover_poison();
            p.into_inner()
        })
    }

    fn lock_shard<'a>(&self, m: &'a Mutex<Shard>) -> MutexGuard<'a, Shard> {
        m.lock().unwrap_or_else(|p| {
            self.recover_poison();
            p.into_inner()
        })
    }

    fn lock_cache(&self) -> MutexGuard<'_, HashMap<String, CacheEntry>> {
        self.cache.lock().unwrap_or_else(|p| {
            self.recover_poison();
            p.into_inner()
        })
    }

    /// Exclusive shard access through a held core **write** guard — no
    /// mutex wait is possible, but a poisoned mutex is still recovered.
    fn shard_mut(m: &mut Mutex<Shard>) -> &mut Shard {
        match m.get_mut() {
            Ok(s) => s,
            Err(p) => p.into_inner(),
        }
    }

    // ---- overload helpers ----------------------------------------------

    /// Estimated bytes of each shard's slice of a routed batch.
    fn bucket_bytes(buckets: &[Vec<(u64, TokenizedRecord)>]) -> Vec<u64> {
        buckets
            .iter()
            .map(|b| b.iter().map(|(_, t)| overload::record_bytes(t)).sum())
            .collect()
    }

    /// Gate an ingest on the memory budget; on refusal bump the
    /// backpressure metric and emit the transition span.
    fn admit_ingest(&self, incoming: u64) -> Result<(), String> {
        self.overload.admit(incoming).map_err(|e| {
            Metrics::incr(&self.metrics.memory_pressure);
            let mut sp = topk_obs::Span::enter("service.overload");
            sp.record("event", "memory_pressure");
            sp.record("incoming_bytes", incoming);
            topk_obs::warn!("{e}");
            e
        })
    }

    /// Fold staged bytes into the per-shard memory gauges.
    fn account_staged(&self, shard_bytes: &[u64]) {
        for (si, &n) in shard_bytes.iter().enumerate() {
            if n > 0 {
                self.overload.add(si, n);
            }
        }
    }

    /// Abort with `deadline_exceeded` when the request's deadline has
    /// passed — called at every stage boundary of the query pipeline so
    /// no work burns past the budget.
    fn check_deadline(&self, deadline: Option<Instant>, stage: &'static str) -> Result<(), String> {
        let Some(d) = deadline else {
            return Ok(());
        };
        if Instant::now() >= d {
            Metrics::incr(&self.metrics.deadline_exceeded);
            let mut sp = topk_obs::Span::enter("service.overload");
            sp.record("event", "deadline_exceeded");
            sp.record("stage", stage);
            return Err(format!(
                "deadline_exceeded: request budget exhausted before {stage}"
            ));
        }
        Ok(())
    }

    // ---- journal --------------------------------------------------------

    /// Enable write-ahead journaling. Call before the engine is shared;
    /// the set must have one segment per engine shard. The caller
    /// replays what [`JournalSet::open`] recovered via
    /// [`Self::replay_rows`].
    pub fn attach_journal(&mut self, journal: JournalSet) {
        assert_eq!(
            journal.n_segments(),
            self.cfg.shards,
            "journal set must have one segment per shard"
        );
        self.journal_gauges = (0..journal.n_segments())
            .map(|i| {
                self.metrics
                    .registry()
                    .gauge(&format!("topk_journal_segment_{i}_bytes"))
            })
            .collect();
        self.journal = Some(journal);
    }

    /// Whether a journal is attached.
    pub fn has_journal(&self) -> bool {
        self.journal.is_some()
    }

    /// The attached journal set, when durability is enabled — exposed so
    /// fault-injection tests can reach [`JournalSet::set_fail_appends`].
    pub fn journal_set(&self) -> Option<&JournalSet> {
        self.journal.as_ref()
    }

    /// Re-apply rows recovered from the journal at startup, *without*
    /// re-appending them (they are already durable). Rows arrive sorted
    /// by record id — the global ingest order — and the rid counter is
    /// resumed above the largest id on disk so future appends sort after
    /// everything already journaled. Returns the new generation.
    pub fn replay_rows(&self, recovery: SetRecovery) -> Result<u64, String> {
        let SetRecovery { rows, max_rid, .. } = recovery;
        let plain: Vec<(Vec<String>, f64)> =
            rows.into_iter().map(|(_, fields, w)| (fields, w)).collect();
        let mut generation = self.generation.load(Ordering::Acquire);
        let mut replayed = 0u64;
        if !plain.is_empty() {
            match self.apply_ingest(plain.clone(), false) {
                Ok(g) => {
                    generation = g;
                    replayed = plain.len() as u64;
                }
                Err(_) => {
                    // A row that fails to apply failed identically when
                    // it was first ingested — the client got an error
                    // and the state did not change. Skipping it
                    // reproduces that state; aborting would lose
                    // everything after it.
                    for (fields, w) in plain {
                        match self.apply_ingest(vec![(fields, w)], false) {
                            Ok(g) => {
                                generation = g;
                                replayed += 1;
                            }
                            Err(e) => {
                                topk_obs::warn!("journal replay: skipping bad row: {e}");
                            }
                        }
                    }
                }
            }
        }
        if let Some(m) = max_rid {
            self.next_rid.fetch_max(m + 1, Ordering::AcqRel);
        }
        self.metrics
            .journal_replayed_records
            .fetch_add(replayed, Ordering::Relaxed);
        Ok(generation)
    }

    // ---- ingest ---------------------------------------------------------

    /// Ingest raw rows (field texts + weight). Fields are normalized
    /// exactly like file loading normalizes them, then tokenized once.
    /// With a journal attached, the rows are made durable *before* they
    /// are applied, so a crash at any point re-applies them on restart.
    /// Returns the new ingest generation.
    pub fn ingest(&self, rows: Vec<(Vec<String>, f64)>) -> Result<u64, String> {
        self.apply_ingest(rows, true)
    }

    /// Fix the schema on first contact, or validate every record's arity
    /// against it. Double-checked: once the schema exists this is a read
    /// lock only. A failing batch may still fix the schema from its
    /// first record — mirroring that a client's first (rejected) request
    /// still pins the arity for the session.
    fn check_schema(&self, toks: &[TokenizedRecord]) -> Result<FieldId, String> {
        {
            let schema = self.read_schema();
            if let Some(fields) = &schema.fields {
                for t in toks {
                    if t.arity() != fields.len() {
                        return Err(format!(
                            "record has {} fields, schema has {}",
                            t.arity(),
                            fields.len()
                        ));
                    }
                }
                return Ok(schema.field);
            }
        }
        let mut schema = self.write_schema();
        for t in toks {
            match &schema.fields {
                Some(fields) => {
                    if t.arity() != fields.len() {
                        return Err(format!(
                            "record has {} fields, schema has {}",
                            t.arity(),
                            fields.len()
                        ));
                    }
                }
                None => {
                    if t.arity() == 0 {
                        return Err("record has no fields".into());
                    }
                    let fields: Vec<String> = (0..t.arity()).map(|i| format!("col{i}")).collect();
                    if let Some(name) = &self.cfg.name_field {
                        schema.field = FieldId(
                            fields
                                .iter()
                                .position(|f| f == name)
                                .ok_or_else(|| format!("no field named `{name}`"))?,
                        );
                    }
                    schema.fields = Some(fields);
                }
            }
        }
        Ok(schema.field)
    }

    /// Lock the touched shards in ascending index order, journal the
    /// batch (all-or-nothing across segments), and stage the records as
    /// pending. The shard locks are held across the journal append so
    /// no concurrent snapshot can truncate between durability and
    /// application.
    fn stage_pending(
        &self,
        core: &Core,
        buckets: &mut [Vec<(u64, TokenizedRecord)>],
        seg_rows: Option<&[Vec<Row>]>,
    ) -> Result<(), String> {
        let mut guards: Vec<(usize, MutexGuard<'_, Shard>)> = Vec::new();
        for (i, m) in core.shards.iter().enumerate() {
            if !buckets[i].is_empty() {
                guards.push((i, self.lock_shard(m)));
            }
        }
        if let Some(rows) = seg_rows {
            if let Some(j) = &self.journal {
                j.append_sharded(rows).map_err(|e| {
                    Metrics::incr(&self.metrics.journal_errors);
                    format!("journal append failed, ingest not applied: {e}")
                })?;
                Metrics::incr(&self.metrics.journal_appends);
            }
        }
        for (i, g) in guards.iter_mut() {
            g.pending.append(&mut buckets[*i]);
        }
        Ok(())
    }

    /// Tokenize, route, and apply rows. Validation and tokenization run
    /// outside every lock; the core lock is taken in **read** mode, so
    /// concurrent ingests only contend on the shard mutexes they
    /// actually touch. Replay passes `journal: false` — the recovered
    /// rows are already durable.
    fn apply_ingest(&self, rows: Vec<(Vec<String>, f64)>, journal: bool) -> Result<u64, String> {
        let t0 = Instant::now();
        let mut sp = topk_obs::Span::enter("service.ingest");
        sp.record("records", rows.len());
        let mut toks = Vec::with_capacity(rows.len());
        for (fields, weight) in &rows {
            if !weight.is_finite() || *weight < 0.0 {
                return Err(format!("weight {weight} must be finite and >= 0"));
            }
            let normalized: Vec<String> = fields
                .iter()
                .map(|f| topk_text::normalize::normalize(f))
                .collect();
            toks.push(TokenizedRecord::from_fields(&normalized, *weight));
        }
        let core = self.read_core();
        let field = self.check_schema(&toks)?;
        let router = ShardRouter::new(self.cfg.shards);
        let n = toks.len();
        let base = self.next_rid.fetch_add(n as u64, Ordering::AcqRel);
        let want_journal = journal && self.journal.is_some();
        let mut buckets: Vec<Vec<(u64, TokenizedRecord)>> =
            (0..self.cfg.shards).map(|_| Vec::new()).collect();
        let mut seg_rows: Vec<Vec<Row>> = (0..self.cfg.shards).map(|_| Vec::new()).collect();
        let mut entry_rows: Vec<Row> = Vec::with_capacity(n);
        for (i, (t, (raw, weight))) in toks.into_iter().zip(rows).enumerate() {
            let si = router.route(&t.field(field).text);
            let rid = base + i as u64;
            if want_journal {
                seg_rows[si].push((rid, raw.clone(), weight));
            }
            entry_rows.push((rid, raw, weight));
            buckets[si].push((rid, t));
        }
        let repl_payload = journal::encode_entry(&entry_rows)?;
        let shard_bytes = Self::bucket_bytes(&buckets);
        self.admit_ingest(shard_bytes.iter().sum())?;
        self.stage_pending(&core, &mut buckets, want_journal.then_some(&seg_rows[..]))?;
        self.account_staged(&shard_bytes);
        // Publish while the core read guard is still held: a snapshot
        // cut for a bootstrapping replica takes the write lock, so its
        // cursor can never miss an entry that is already staged.
        self.repl_log.publish(repl_payload);
        drop(core);
        let generation = self.generation.fetch_add(n as u64, Ordering::AcqRel) + n as u64;
        self.lock_cache().clear(); // ingestion invalidates every cached answer
        self.metrics
            .ingested_records
            .fetch_add(n as u64, Ordering::Relaxed);
        Metrics::incr(&self.metrics.ingest_requests);
        self.metrics.ingest_latency.record(t0.elapsed());
        Ok(generation)
    }

    /// Ingest records that are already normalized and tokenized (the
    /// `--preload` path: the corpus loader tokenized them, no second
    /// pass). `fields` is the file's schema.
    pub fn ingest_toks(
        &self,
        toks: Vec<TokenizedRecord>,
        fields: Vec<String>,
        field: FieldId,
    ) -> Result<u64, String> {
        let t0 = Instant::now();
        let mut sp = topk_obs::Span::enter("service.ingest");
        sp.record("records", toks.len());
        sp.record("preloaded", true);
        let core = self.read_core();
        let known = {
            let schema = self.read_schema();
            match &schema.fields {
                Some(existing) if existing.len() != fields.len() => {
                    return Err(format!(
                        "preload has {} fields, engine schema has {}",
                        fields.len(),
                        existing.len()
                    ));
                }
                Some(_) => Some(schema.field),
                None => None,
            }
        };
        let eng_field = match known {
            Some(f) => f,
            None => {
                let mut schema = self.write_schema();
                if let Some(existing) = &schema.fields {
                    if existing.len() != fields.len() {
                        return Err(format!(
                            "preload has {} fields, engine schema has {}",
                            fields.len(),
                            existing.len()
                        ));
                    }
                } else {
                    schema.fields = Some(fields);
                    schema.field = field;
                }
                schema.field
            }
        };
        let router = ShardRouter::new(self.cfg.shards);
        let n = toks.len();
        let base = self.next_rid.fetch_add(n as u64, Ordering::AcqRel);
        let mut buckets: Vec<Vec<(u64, TokenizedRecord)>> =
            (0..self.cfg.shards).map(|_| Vec::new()).collect();
        for (i, t) in toks.into_iter().enumerate() {
            let si = router.route(&t.field(eng_field).text);
            buckets[si].push((base + i as u64, t));
        }
        let shard_bytes = Self::bucket_bytes(&buckets);
        self.admit_ingest(shard_bytes.iter().sum())?;
        self.stage_pending(&core, &mut buckets, None)?;
        self.account_staged(&shard_bytes);
        drop(core);
        let generation = self.generation.fetch_add(n as u64, Ordering::AcqRel) + n as u64;
        self.lock_cache().clear();
        self.metrics
            .ingested_records
            .fetch_add(n as u64, Ordering::Relaxed);
        Metrics::incr(&self.metrics.ingest_requests);
        self.metrics.ingest_latency.record(t0.elapsed());
        Ok(generation)
    }

    /// Apply one replicated journal entry, **preserving the primary's
    /// record ids**: flush sorts pending rows by rid, so re-applying the
    /// primary's entries — in any arrival order — collapses into the
    /// exact state the primary holds, at any shard count. The entry is
    /// journaled locally (same rids) and re-published to this server's
    /// own replication log, so replicas can chain.
    ///
    /// Returns `Ok(false)` without touching state when the engine is no
    /// longer a replica (a concurrent `promote` won the apply gate).
    pub fn apply_replica_entry(&self, rows: Vec<Row>) -> Result<bool, String> {
        let _gate = self.apply_gate.lock().unwrap_or_else(|p| p.into_inner());
        if self.role() != Role::Replica {
            return Ok(false);
        }
        self.apply_rows(rows)?;
        Ok(true)
    }

    /// Ingest rows that already carry record ids (the replication apply
    /// path). Mirrors [`Self::apply_ingest`] except the rids are kept
    /// and the rid counter is raised above the largest one seen.
    fn apply_rows(&self, rows: Vec<Row>) -> Result<u64, String> {
        let t0 = Instant::now();
        let mut sp = topk_obs::Span::enter("service.replica_apply");
        sp.record("records", rows.len());
        let mut toks = Vec::with_capacity(rows.len());
        for (_, fields, weight) in &rows {
            if !weight.is_finite() || *weight < 0.0 {
                return Err(format!("weight {weight} must be finite and >= 0"));
            }
            let normalized: Vec<String> = fields
                .iter()
                .map(|f| topk_text::normalize::normalize(f))
                .collect();
            toks.push(TokenizedRecord::from_fields(&normalized, *weight));
        }
        let core = self.read_core();
        let field = self.check_schema(&toks)?;
        let router = ShardRouter::new(self.cfg.shards);
        let n = rows.len();
        let want_journal = self.journal.is_some();
        let mut buckets: Vec<Vec<(u64, TokenizedRecord)>> =
            (0..self.cfg.shards).map(|_| Vec::new()).collect();
        let mut seg_rows: Vec<Vec<Row>> = (0..self.cfg.shards).map(|_| Vec::new()).collect();
        let mut entry_rows: Vec<Row> = Vec::with_capacity(n);
        let mut max_rid = 0u64;
        for (t, (rid, raw, weight)) in toks.into_iter().zip(rows) {
            let si = router.route(&t.field(field).text);
            max_rid = max_rid.max(rid);
            if want_journal {
                seg_rows[si].push((rid, raw.clone(), weight));
            }
            entry_rows.push((rid, raw, weight));
            buckets[si].push((rid, t));
        }
        let repl_payload = journal::encode_entry(&entry_rows)?;
        let shard_bytes = Self::bucket_bytes(&buckets);
        // Replicas stand under the same watermarks as the primary: an
        // over-budget apply is refused here and surfaced as pressure by
        // the tailer instead of silently growing past the budget.
        self.admit_ingest(shard_bytes.iter().sum())?;
        self.stage_pending(&core, &mut buckets, want_journal.then_some(&seg_rows[..]))?;
        self.account_staged(&shard_bytes);
        self.repl_log.publish(repl_payload);
        drop(core);
        self.next_rid.fetch_max(max_rid + 1, Ordering::AcqRel);
        let generation = self.generation.fetch_add(n as u64, Ordering::AcqRel) + n as u64;
        self.lock_cache().clear();
        self.metrics
            .ingested_records
            .fetch_add(n as u64, Ordering::Relaxed);
        self.metrics.ingest_latency.record(t0.elapsed());
        Ok(generation)
    }

    // ---- flush ----------------------------------------------------------

    /// Merge every pending record into its shard's collapse under the
    /// *current* corpus statistics. Requires the core write lock (shard
    /// mutexes are reached via `get_mut` — no waiting). Per-shard
    /// inserts run on scoped threads when parallelism and the shard
    /// count allow. Returns whether anything was flushed.
    fn flush_locked(&self, core: &mut Core, field: FieldId) -> bool {
        let Core {
            shards,
            global,
            stats,
            seen,
            topr_toks,
            max_weight,
        } = core;
        let mut shard_refs: Vec<&mut Shard> = shards.iter_mut().map(Self::shard_mut).collect();
        let total: usize = shard_refs.iter().map(|s| s.pending.len()).sum();
        if total == 0 {
            return false;
        }
        let mut sp = topk_obs::Span::enter("service.flush");
        sp.record("records", total);
        // Per-shard pending back into rid order (concurrent ingests may
        // have interleaved): a shard's insert order then equals the
        // global ingest order restricted to that shard, which is what
        // keeps the collapse byte-identical to an unsharded engine.
        for s in shard_refs.iter_mut() {
            s.pending.sort_by_key(|&(rid, _)| rid);
        }
        // Fold corpus statistics for every pending record. The fold is
        // order-independent (set-guarded counting), so folding shard by
        // shard produces exactly the statistics the unsharded engine
        // folds at ingest time.
        for s in shard_refs.iter() {
            for (_, t) in &s.pending {
                let f = t.field(field);
                if seen.insert(topk_text::hash::hash_str(&f.text)) {
                    stats.add_document(&f.words);
                }
                if t.weight() > *max_weight {
                    *max_weight = t.weight();
                }
            }
        }
        // Dense global ids in global rid order, appended to the gid map.
        let mut order: Vec<(u64, u32)> = Vec::with_capacity(total);
        for (si, s) in shard_refs.iter().enumerate() {
            order.extend(s.pending.iter().map(|&(rid, _)| (rid, si as u32)));
        }
        order.sort_unstable();
        let mut staged_gids: Vec<Vec<u32>> = shard_refs
            .iter()
            .map(|s| Vec::with_capacity(s.pending.len()))
            .collect();
        let mut next_local: Vec<u32> = shard_refs.iter().map(|s| s.inc.len() as u32).collect();
        for &(_, si) in &order {
            let gid = global.len() as u32;
            global.push((si, next_local[si as usize]));
            next_local[si as usize] += 1;
            staged_gids[si as usize].push(gid);
        }
        // One predicate stack under the settled statistics: every shard
        // collapses under the same statistics a single engine would use.
        let stack = stack_from_stats(
            Arc::new(stats.clone()),
            field,
            self.cfg.max_df,
            self.cfg.min_overlap,
        );
        let s_pred = stack.levels[0].0.as_ref();
        let insert = |shard: &mut Shard, gids: Vec<u32>| {
            for ((_, t), gid) in shard.pending.drain(..).zip(gids) {
                shard
                    .sample
                    .offer(gid as u64, ShardRouter::key(&t.field(field).text), &t);
                let local = shard.inc.insert(t, s_pred);
                debug_assert_eq!(local as usize, shard.gids.len());
                shard.gids.push(gid);
            }
            shard.groups = None;
        };
        let work: Vec<(&mut Shard, Vec<u32>)> = shard_refs
            .into_iter()
            .zip(staged_gids)
            .filter(|(s, _)| !s.pending.is_empty())
            .collect();
        if self.cfg.parallelism.is_sequential() || work.len() <= 1 {
            for (shard, gids) in work {
                insert(shard, gids);
            }
        } else {
            std::thread::scope(|scope| {
                let insert = &insert;
                for (shard, gids) in work {
                    scope.spawn(move || insert(shard, gids));
                }
            });
        }
        *topr_toks = None;
        for (i, m) in shards.iter_mut().enumerate() {
            let s = Self::shard_mut(m);
            self.shard_gauges[i]
                .0
                .store(s.inc.len() as i64, Ordering::Relaxed);
            self.shard_gauges[i]
                .1
                .store(s.inc.group_count() as i64, Ordering::Relaxed);
            self.shard_gauges[i]
                .2
                .store(s.sample.len() as i64, Ordering::Relaxed);
        }
        Metrics::incr(&self.metrics.flushes);
        true
    }

    // ---- queries --------------------------------------------------------

    /// The one query entry point every `topk`/`topr` variant funnels
    /// through: `rank` selects the TopR shape, `approx` the sampled tier
    /// at ε, `explain` attaches a profile, and `deadline` is the
    /// request's remaining wall-clock budget — checked at every stage
    /// boundary, so an expired request aborts with a
    /// `deadline_exceeded`-prefixed error instead of burning work.
    /// Successful executions feed the per-class cost EWMA that
    /// cost-based admission (`Self::overload_gate`) reads.
    pub fn query_with(
        &self,
        rank: bool,
        k: usize,
        approx: Option<f64>,
        explain: bool,
        deadline: Option<Instant>,
    ) -> Result<Json, String> {
        if let Some(epsilon) = approx {
            topk_approx::validate_epsilon(epsilon)?;
            Metrics::incr(&self.metrics.approx_queries);
        }
        self.check_deadline(deadline, "admission")?;
        let cmd = if rank { "topr" } else { "topk" };
        let key = match approx {
            Some(epsilon) => format!("{cmd}:k={k}:approx={epsilon}"),
            None => format!("{cmd}:k={k}"),
        };
        let t0 = Instant::now();
        let compute = move |engine: &Engine,
                            core: &mut Core,
                            field: FieldId,
                            prof: Option<&mut QueryProfile>| {
            // The deadline may have expired while waiting for the core
            // lock or flushing pending records.
            engine.check_deadline(deadline, "compute")?;
            match approx {
                Some(epsilon) => {
                    engine.compute_approx(core, field, k, epsilon, rank, deadline, prof)
                }
                None if rank => engine.compute_topr(core, field, k, deadline, prof),
                None => engine.compute_topk(core, field, k, deadline, prof),
            }
        };
        let res = if explain {
            let mut p = QueryProfile::new(cmd, k);
            self.cached_query(key, Some(&mut p), compute)
                .map(|body| self.finish_explained(body, p))
        } else {
            self.cached_query(key, None, compute)
        };
        if res.is_ok() {
            self.overload.record_cost(
                overload::cost_class(rank, approx.is_some()),
                t0.elapsed().as_micros() as u64,
            );
        }
        res
    }

    /// TopK count-style query: the K heaviest collapsed groups surviving
    /// the bound/prune machinery, rendered as a JSON result body.
    pub fn query_topk(&self, k: usize) -> Result<Json, String> {
        self.query_with(false, k, None, false, None)
    }

    /// [`Self::query_topk`] with a [`QueryProfile`] appended as the
    /// body's `profile` member (the `"explain":true` protocol path).
    pub fn query_topk_explained(&self, k: usize) -> Result<Json, String> {
        self.query_with(false, k, None, true, None)
    }

    /// TopR rank-style query (§7.1): group *order* with upper bounds and
    /// a certification flag — the cheap way to keep a leaderboard fresh.
    pub fn query_topr(&self, k: usize) -> Result<Json, String> {
        self.query_with(true, k, None, false, None)
    }

    /// [`Self::query_topr`] with a `profile` member.
    pub fn query_topr_explained(&self, k: usize) -> Result<Json, String> {
        self.query_with(true, k, None, true, None)
    }

    /// Approximate TopK (`docs/APPROX.md`): estimate group weights from
    /// the merged per-shard sample sketches, escalate every blocking
    /// partition whose confidence interval overlaps the K-boundary to
    /// the exact collapse, and merge. Each returned group carries
    /// `(estimate, lo, hi, escalated)`.
    pub fn query_topk_approx(&self, k: usize, epsilon: f64) -> Result<Json, String> {
        self.query_with(false, k, Some(epsilon), false, None)
    }

    /// [`Self::query_topk_approx`] with a `profile` member (including
    /// the sampled tier's escalated-partition list).
    pub fn query_topk_approx_explained(&self, k: usize, epsilon: f64) -> Result<Json, String> {
        self.query_with(false, k, Some(epsilon), true, None)
    }

    /// Approximate TopR: the same sampled estimator answering in the
    /// rank-query shape (`entries` + `certified`). The deeper rank
    /// refinement applies only to exact mode, so `certified` is true
    /// exactly when every returned entry is exact (escalated or fully
    /// sampled).
    pub fn query_topr_approx(&self, k: usize, epsilon: f64) -> Result<Json, String> {
        self.query_with(true, k, Some(epsilon), false, None)
    }

    /// [`Self::query_topr_approx`] with a `profile` member.
    pub fn query_topr_approx_explained(&self, k: usize, epsilon: f64) -> Result<Json, String> {
        self.query_with(true, k, Some(epsilon), true, None)
    }

    /// Run the brownout state machine and cost-based admission for one
    /// `topk`/`topr` request. `Ok(None)` serves the request as asked;
    /// `Ok(Some(ε))` means brownout is active and an *exact* request
    /// must degrade to the approx tier at ε (marked `degraded:true` by
    /// the server); `Err(retry_after_ms)` sheds the request because its
    /// estimated cost cannot fit the remaining deadline or the latency
    /// objective. Transitions bump metrics and emit spans exactly once
    /// per edge.
    pub fn overload_gate(
        &self,
        rank: bool,
        approx_requested: bool,
        deadline: Option<Instant>,
    ) -> Result<Option<f64>, u64> {
        // The 1m window drives brownout: long windows would hold the
        // degraded tier for an hour after a transient spike. A handful
        // of samples is noise, not a violation.
        let slo_bad = self
            .slo
            .report()
            .first()
            .is_some_and(|w| !w.p99_ok && w.total >= 16);
        let (active, transition) = self.overload.evaluate(slo_bad);
        match transition {
            Some(Transition::Entered) => {
                Metrics::incr(&self.metrics.brownout_entries);
                let mut sp = topk_obs::Span::enter("service.overload");
                sp.record("event", "brownout_enter");
                sp.record("slo_bad", slo_bad);
                sp.record("memory_bytes", self.overload.total_bytes());
                topk_obs::warn!(
                    "brownout entered: slo_bad={slo_bad}, memory {} of {} bytes — exact \
                     queries degrade to the approx tier",
                    self.overload.total_bytes(),
                    self.overload.budget()
                );
            }
            Some(Transition::Exited) => {
                Metrics::incr(&self.metrics.brownout_exits);
                let mut sp = topk_obs::Span::enter("service.overload");
                sp.record("event", "brownout_exit");
                topk_obs::info!("brownout exited: pressure cleared, exact answers resume");
            }
            None => {}
        }
        if !active {
            return Ok(None);
        }
        let degrade = if approx_requested {
            None
        } else {
            Some(self.overload.epsilon(slo_bad))
        };
        // Admission considers the class that will actually run — the
        // degraded (approx) tier when degrading — so cheap queries keep
        // succeeding while ones that cannot meet their budget shed.
        let class = overload::cost_class(rank, approx_requested || degrade.is_some());
        if let Some(cost) = self.overload.estimated_cost_micros(class) {
            let over_deadline = deadline.is_some_and(|d| {
                d.saturating_duration_since(Instant::now()).as_micros() < cost as u128
            });
            let over_target = cost > self.slo.p99_target_micros().saturating_mul(4);
            if over_deadline || over_target {
                Metrics::incr(&self.metrics.admission_sheds);
                let mut sp = topk_obs::Span::enter("service.overload");
                sp.record("event", "admission_shed");
                sp.record("estimated_cost_micros", cost);
                return Err(overload::RETRY_AFTER_MS);
            }
        }
        Ok(degrade)
    }

    /// The overload-control state (memory gauges, brownout flag) — read
    /// by the server's health body and by tests.
    pub fn overload(&self) -> &OverloadControl {
        &self.overload
    }

    /// Seal an explained query: count it, push the rendered profile
    /// into the ring for `profiles`, and append it to the response
    /// body. The *cache* stores the unprofiled body (the profile
    /// describes one execution, not the answer), so explain-on and
    /// explain-off queries share cache entries.
    fn finish_explained(&self, body: Json, profile: QueryProfile) -> Json {
        Metrics::incr(&self.metrics.explained_queries);
        let rendered = profile.render();
        self.profiles.push(rendered.clone());
        match body {
            Json::Obj(mut members) => {
                members.push(("profile".to_string(), rendered));
                Json::Obj(members)
            }
            other => other,
        }
    }

    /// Take every buffered explained-query profile, oldest first (the
    /// `profiles` protocol command).
    pub fn drain_profiles(&self) -> Vec<Json> {
        self.profiles.drain()
    }

    /// Shared implementation of the approximate queries: sample →
    /// estimate → escalate → merge. `as_topr` switches the rendered
    /// shape (`entries`/`certified` vs `groups`).
    #[allow(clippy::too_many_arguments)] // one call site, mirrors the query wire options
    fn compute_approx(
        &self,
        core: &mut Core,
        field: FieldId,
        k: usize,
        epsilon: f64,
        as_topr: bool,
        deadline: Option<Instant>,
        mut prof: Option<&mut QueryProfile>,
    ) -> Result<Json, String> {
        assert!(k >= 1, "K must be at least 1");
        let Core {
            shards,
            global,
            stats,
            max_weight,
            ..
        } = core;
        let m = topk_approx::sample_size(epsilon);
        let n = global.len() as u64;
        let render = |items: Vec<Json>, escalated_parts: usize, used: usize, certified: bool| {
            let mut body = vec![
                ("epsilon", Json::Num(epsilon)),
                ("sample_size", Json::Num(used as f64)),
                ("population", Json::Num(n as f64)),
                ("escalated_partitions", Json::Num(escalated_parts as f64)),
            ];
            if as_topr {
                body.push(("entries", Json::Arr(items)));
                body.push(("certified", Json::Bool(certified)));
            } else {
                body.push(("groups", Json::Arr(items)));
            }
            obj(body)
        };
        if global.is_empty() {
            if let Some(p) = prof.as_deref_mut() {
                p.shards = Some(ShardProfile {
                    total: shards.len(),
                    scanned: 0,
                    skipped: 0,
                    empty: shards.len(),
                });
                p.approx = Some(ApproxProfile {
                    epsilon,
                    sample_requested: m,
                    sample_size: 0,
                    population: 0,
                    escalated_partitions: Vec::new(),
                    certified: false,
                });
            }
            return Ok(render(Vec::new(), 0, 0, false));
        }
        self.check_deadline(deadline, "sample")?;
        let t_sample = Instant::now();
        // Sample: the merged per-shard sketches reproduce exactly the
        // bottom-m of the whole stream, at every shard count.
        let (estimates, used) = {
            let mut sp = topk_obs::Span::enter("service.approx_sample");
            sp.record("requested", m);
            let shard_refs: Vec<&Shard> =
                shards.iter_mut().map(|mu| &*Self::shard_mut(mu)).collect();
            let sample: Vec<&SampleEntry> =
                topk_approx::merge_sketches(shard_refs.iter().map(|s| &s.sample), m);
            sp.record("sampled", sample.len());
            drop(sp);
            let stack = stack_from_stats(
                Arc::new(stats.clone()),
                field,
                self.cfg.max_df,
                self.cfg.min_overlap,
            );
            let s_pred = stack.levels[0].0.as_ref();
            let used = sample.len();
            (
                topk_approx::estimate_groups(
                    &sample,
                    Population {
                        n,
                        max_weight: *max_weight,
                    },
                    field,
                    s_pred,
                ),
                used,
            )
        };
        if let Some(p) = prof.as_deref_mut() {
            p.stage("sample", t_sample.elapsed());
        }
        self.check_deadline(deadline, "escalate")?;
        let t_escalate = Instant::now();
        let (_tau, parts) = topk_approx::escalation_partitions(&estimates, k);
        self.metrics
            .approx_escalations
            .fetch_add(parts.len() as u64, Ordering::Relaxed);
        // Escalate: gather the *exact* groups of every escalated
        // partition from the per-shard collapses — including groups the
        // sample never saw (fragment repair).
        let n_shards = shards.len();
        let touched: HashSet<usize> = parts
            .iter()
            .map(|p| (p % n_shards as u64) as usize)
            .collect();
        self.build_views(shards, Some(&touched));
        let mut cands: Vec<ApproxGroup> = Vec::new();
        for (si, mu) in shards.iter_mut().enumerate() {
            if !touched.contains(&si) {
                continue;
            }
            let s = Self::shard_mut(mu);
            let Some(views) = s.groups.as_ref() else {
                continue; // unreachable: views were built for touched shards
            };
            for g in views {
                let text = &s.inc.records()[g.rep_local as usize].field(field).text;
                if parts.contains(&ShardRouter::key(text)) {
                    cands.push(ApproxGroup {
                        estimate: g.weight,
                        lo: g.weight,
                        hi: g.weight,
                        size: g.size,
                        escalated: true,
                        rep_rid: g.rep_gid as u64,
                        rep_text: text.clone(),
                    });
                }
            }
        }
        for e in estimates {
            if !parts.contains(&e.partition) {
                cands.push(ApproxGroup {
                    estimate: e.estimate,
                    lo: e.lo,
                    hi: e.hi,
                    size: e.sampled as u32,
                    escalated: false,
                    rep_rid: e.rep_rid,
                    rep_text: e.rep_text,
                });
            }
        }
        if let Some(p) = prof.as_deref_mut() {
            p.stage("escalate", t_escalate.elapsed());
        }
        self.check_deadline(deadline, "merge")?;
        let t_merge = Instant::now();
        let top = topk_approx::merge_topk(cands, k);
        let certified = top.iter().all(|g| g.escalated || g.lo == g.hi);
        let items: Vec<Json> = top
            .into_iter()
            .enumerate()
            .map(|(rank, g)| {
                obj(vec![
                    ("rank", Json::Num((rank + 1) as f64)),
                    ("estimate", Json::Num(g.estimate)),
                    ("lo", Json::Num(g.lo)),
                    ("hi", Json::Num(g.hi)),
                    ("size", Json::Num(g.size as f64)),
                    ("escalated", Json::Bool(g.escalated)),
                    ("rep_id", Json::Num(g.rep_rid as f64)),
                    ("rep", Json::Str(g.rep_text)),
                ])
            })
            .collect();
        if let Some(p) = prof {
            p.stage("merge", t_merge.elapsed());
            // For an approximate query "scanned" means touched by
            // escalation — the shards whose exact collapse was read.
            p.shards = Some(ShardProfile {
                total: n_shards,
                scanned: touched.len(),
                skipped: n_shards - touched.len(),
                empty: 0,
            });
            p.groups_returned = items.len();
            let mut escalated: Vec<u64> = parts.iter().copied().collect();
            escalated.sort_unstable();
            p.approx = Some(ApproxProfile {
                epsilon,
                sample_requested: m,
                sample_size: used,
                population: n,
                escalated_partitions: escalated,
                certified,
            });
        }
        Ok(render(items, parts.len(), used, certified))
    }

    /// Rebuild group views for shards whose collapse changed since the
    /// last query (parallel: each rebuild sorts its group list). With
    /// `only`, restricted to those shard indices.
    fn build_views(&self, shards: &mut [Mutex<Shard>], only: Option<&HashSet<usize>>) {
        let build = |s: &mut Shard| {
            let views: Vec<GroupView> = s
                .inc
                .groups()
                .into_iter()
                .map(|g| GroupView {
                    weight: g.weight,
                    size: g.members.len() as u32,
                    rep_gid: s.gids[g.rep as usize],
                    rep_local: g.rep,
                })
                .collect();
            // groups() sorts (weight desc, local rep asc); local rep
            // order equals global rep order because gids are strictly
            // increasing per shard.
            s.groups = Some(views);
        };
        let stale: Vec<&mut Shard> = shards
            .iter_mut()
            .enumerate()
            .filter(|(i, _)| only.map_or(true, |set| set.contains(i)))
            .map(|(_, m)| Self::shard_mut(m))
            .filter(|s| s.groups.is_none())
            .collect();
        if self.cfg.parallelism.is_sequential() || stale.len() <= 1 {
            for s in stale {
                build(s);
            }
        } else {
            std::thread::scope(|scope| {
                let build = &build;
                for s in stale {
                    scope.spawn(move || build(s));
                }
            });
        }
    }

    /// Cross-shard TopK merge. Per-shard group lists are each sorted
    /// (weight desc, rep asc) — identical to the order a single engine's
    /// pruned query renders, because every survivor of the prune with
    /// weight at or above the k-th group is kept unconditionally, so the
    /// rendered top k equals the global top k of *all* groups. Shards
    /// are visited in descending best-group weight; once k candidates
    /// are held, a shard whose best group is strictly below the current
    /// k-th weight (and therefore every shard after it) is skipped
    /// whole — the `shard_skips` metric counts them.
    fn compute_topk(
        &self,
        core: &mut Core,
        field: FieldId,
        k: usize,
        deadline: Option<Instant>,
        mut prof: Option<&mut QueryProfile>,
    ) -> Result<Json, String> {
        let Core { shards, .. } = core;
        {
            let all_empty = shards.iter_mut().all(|m| Self::shard_mut(m).inc.is_empty());
            if all_empty {
                if let Some(p) = prof {
                    p.shards = Some(ShardProfile {
                        total: shards.len(),
                        scanned: 0,
                        skipped: 0,
                        empty: shards.len(),
                    });
                }
                return Ok(obj(vec![("groups", Json::Arr(Vec::new()))]));
            }
        }
        assert!(k >= 1, "K must be at least 1");
        self.check_deadline(deadline, "build_views")?;
        let t_views = Instant::now();
        self.build_views(shards, None);
        if let Some(p) = prof.as_deref_mut() {
            p.stage("build_views", t_views.elapsed());
        }
        self.check_deadline(deadline, "merge")?;
        let t_merge = Instant::now();
        static EMPTY_VIEWS: Vec<GroupView> = Vec::new();
        let views: Vec<&Vec<GroupView>> = shards
            .iter_mut()
            .map(|m| Self::shard_mut(m).groups.as_ref().unwrap_or(&EMPTY_VIEWS))
            .collect();
        let mut visit: Vec<usize> = (0..views.len()).filter(|&i| !views[i].is_empty()).collect();
        visit.sort_by(|&a, &b| {
            views[b][0]
                .weight
                .total_cmp(&views[a][0].weight)
                .then(views[a][0].rep_gid.cmp(&views[b][0].rep_gid))
        });
        let by_rank = |a: &(u32, GroupView), b: &(u32, GroupView)| {
            b.1.weight
                .total_cmp(&a.1.weight)
                .then(a.1.rep_gid.cmp(&b.1.rep_gid))
        };
        let mut cands: Vec<(u32, GroupView)> = Vec::new();
        let mut skips = 0u64;
        let mut scanned = 0usize;
        let mut groups_scanned = 0u64;
        for (pos, &si) in visit.iter().enumerate() {
            if cands.len() >= k {
                // Strict <: a shard whose best group ties the current
                // k-th weight must still merge — the global tie-break is
                // by representative id.
                if views[si][0].weight < cands[k - 1].1.weight {
                    skips += (visit.len() - pos) as u64;
                    break;
                }
            }
            // The global top k holds at most k groups of any one shard,
            // so each shard's sorted k-prefix suffices.
            scanned += 1;
            groups_scanned += views[si].len().min(k) as u64;
            cands.extend(views[si].iter().take(k).map(|g| (si as u32, *g)));
            cands.sort_by(by_rank);
            cands.truncate(k);
        }
        if skips > 0 {
            self.metrics.shard_skips.fetch_add(skips, Ordering::Relaxed);
        }
        if let Some(p) = prof.as_deref_mut() {
            p.shards = Some(ShardProfile {
                total: views.len(),
                scanned,
                skipped: skips as usize,
                empty: views.len() - visit.len(),
            });
            p.groups_scanned = groups_scanned;
            p.groups_returned = cands.len();
        }
        drop(views);
        let mut items = Vec::with_capacity(cands.len());
        for (rank, (si, g)) in cands.iter().enumerate() {
            let s = Self::shard_mut(&mut shards[*si as usize]);
            let rep = s.inc.records()[g.rep_local as usize]
                .field(field)
                .text
                .clone();
            items.push(obj(vec![
                ("rank", Json::Num((rank + 1) as f64)),
                ("weight", Json::Num(g.weight)),
                ("size", Json::Num(g.size as f64)),
                ("rep_id", Json::Num(g.rep_gid as f64)),
                ("rep", Json::Str(rep)),
            ]));
        }
        if let Some(p) = prof {
            p.stage("merge", t_merge.elapsed());
        }
        Ok(obj(vec![("groups", Json::Arr(items))]))
    }

    /// TopR over all shards: the rank query runs over the records in
    /// global id order — exactly the slice a single engine would hand
    /// it, so answers are byte-identical at every shard count. With one
    /// shard the records are borrowed in place; with more they are
    /// gathered (clones) into a cache invalidated by the next flush.
    fn compute_topr(
        &self,
        core: &mut Core,
        field: FieldId,
        k: usize,
        deadline: Option<Instant>,
        mut prof: Option<&mut QueryProfile>,
    ) -> Result<Json, String> {
        let Core {
            shards,
            global,
            stats,
            topr_toks,
            ..
        } = core;
        if let Some(p) = prof.as_deref_mut() {
            // The rank query scans every collapsed record, so no shard
            // is ever skipped — only empty shards contribute nothing.
            let empty = shards
                .iter_mut()
                .map(Self::shard_mut)
                .filter(|s| s.inc.is_empty())
                .count();
            p.shards = Some(ShardProfile {
                total: shards.len(),
                scanned: shards.len() - empty,
                skipped: 0,
                empty,
            });
        }
        if global.is_empty() {
            return Ok(obj(vec![
                ("entries", Json::Arr(Vec::new())),
                ("certified", Json::Bool(false)),
            ]));
        }
        self.check_deadline(deadline, "gather")?;
        let t_gather = Instant::now();
        let stack = stack_from_stats(
            Arc::new(stats.clone()),
            field,
            self.cfg.max_df,
            self.cfg.min_overlap,
        );
        let toks: &[TokenizedRecord] = if shards.len() == 1 {
            Self::shard_mut(&mut shards[0]).inc.records()
        } else {
            if topr_toks.is_none() {
                let refs: Vec<&Shard> = shards.iter_mut().map(|m| &*Self::shard_mut(m)).collect();
                let mut all = Vec::with_capacity(global.len());
                for &(si, li) in global.iter() {
                    all.push(refs[si as usize].inc.records()[li as usize].clone());
                }
                *topr_toks = Some(all);
            }
            topr_toks.as_deref().unwrap_or(&[])
        };
        if let Some(p) = prof.as_deref_mut() {
            p.stage("gather", t_gather.elapsed());
        }
        self.check_deadline(deadline, "rank_query")?;
        let t_rank = Instant::now();
        let mut q = TopKRankQuery::new(k);
        q.parallelism = self.cfg.parallelism;
        let res = q.run(toks, &stack);
        let entries: Vec<Json> = res
            .entries
            .iter()
            .enumerate()
            .map(|(rank, e)| {
                obj(vec![
                    ("rank", Json::Num((rank + 1) as f64)),
                    ("weight", Json::Num(e.weight)),
                    ("upper_bound", Json::Num(e.upper_bound)),
                    ("size", Json::Num(e.records.len() as f64)),
                    ("rep_id", Json::Num(e.rep as f64)),
                    (
                        "rep",
                        Json::Str(toks[e.rep as usize].field(field).text.clone()),
                    ),
                ])
            })
            .collect();
        if let Some(p) = prof {
            p.stage("rank_query", t_rank.elapsed());
            p.groups_scanned = toks.len() as u64;
            p.groups_returned = entries.len();
        }
        Ok(obj(vec![
            ("entries", Json::Arr(entries)),
            ("certified", Json::Bool(res.certified)),
        ]))
    }

    /// Run `compute` through the generation-keyed cache. A hit at the
    /// current generation returns without touching the core lock at all
    /// (it linearizes before any in-flight ingest); a miss takes the
    /// write lock, flushes, computes, and caches at the settled
    /// generation.
    ///
    /// With `profile` set (the `"explain":true` path) the execution is
    /// additionally described into it; explain-off queries pass `None`
    /// and pay nothing beyond a null check. The cache stores the
    /// *unprofiled* body, so both paths share entries.
    fn cached_query<F>(
        &self,
        key: String,
        mut profile: Option<&mut QueryProfile>,
        compute: F,
    ) -> Result<Json, String>
    where
        F: FnOnce(&Engine, &mut Core, FieldId, Option<&mut QueryProfile>) -> Result<Json, String>,
    {
        let t0 = Instant::now();
        let mut sp = topk_obs::Span::enter("service.query");
        if sp.is_recording() {
            sp.record("key", key.as_str());
        }
        Metrics::incr(&self.metrics.queries);
        let observed = self.generation.load(Ordering::Acquire);
        {
            let cache = self.lock_cache();
            if let Some(entry) = cache.get(&key) {
                if entry.generation == observed {
                    let body = entry.body.clone();
                    drop(cache);
                    Metrics::incr(&self.metrics.cache_hits);
                    self.metrics.query_latency.record(t0.elapsed());
                    sp.record("cache_hit", true);
                    if let Some(p) = profile {
                        p.cache_hit = true;
                        p.generation = observed;
                        p.total_micros = t0.elapsed().as_micros() as u64;
                    }
                    return Ok(body);
                }
            }
        }
        Metrics::incr(&self.metrics.cache_misses);
        sp.record("cache_hit", false);
        let t_lock = Instant::now();
        let mut core = self.write_core();
        let field = self.read_schema().field;
        if let Some(p) = profile.as_deref_mut() {
            p.stage("lock_wait", t_lock.elapsed());
        }
        let t_flush = Instant::now();
        if self.flush_locked(&mut core, field) {
            if let Some(p) = profile.as_deref_mut() {
                p.stage("flush", t_flush.elapsed());
            }
        }
        let generation = self.generation.load(Ordering::Acquire);
        let body = compute(self, &mut core, field, profile.as_deref_mut())?;
        drop(core);
        let mut cache = self.lock_cache();
        if cache.len() >= CACHE_CAP {
            cache.clear();
        }
        cache.insert(
            key,
            CacheEntry {
                generation,
                body: body.clone(),
            },
        );
        drop(cache);
        self.metrics.query_latency.record(t0.elapsed());
        if let Some(p) = profile {
            p.generation = generation;
            p.total_micros = t0.elapsed().as_micros() as u64;
        }
        Ok(body)
    }

    /// Current ingest generation (total records ever accepted).
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    // ---- replication ----------------------------------------------------

    /// This server's current replication role.
    pub fn role(&self) -> Role {
        Role::from_u8(self.role.load(Ordering::Acquire))
    }

    /// Set the role. Called once at startup (`--replica-of` makes the
    /// server a replica); later changes go through [`Self::promote`].
    pub fn set_role(&self, role: Role) {
        self.role.store(role.as_u8(), Ordering::Release);
    }

    /// Current replication epoch (starts at 1; bumped by promotion).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Adopt the primary's epoch (replica handshake, only upward).
    pub fn set_epoch(&self, epoch: u64) {
        self.epoch.fetch_max(epoch, Ordering::AcqRel);
    }

    /// Promote this server to primary: stops replica applies (under the
    /// apply gate, so no entry straddles the change), flips the role,
    /// and bumps the epoch. Idempotent — promoting a primary changes
    /// nothing. Returns `(promoted_now, epoch)`.
    pub fn promote(&self) -> (bool, u64) {
        let _gate = self.apply_gate.lock().unwrap_or_else(|p| p.into_inner());
        if self.role() == Role::Primary {
            return (false, self.epoch());
        }
        self.set_role(Role::Primary);
        let epoch = self.epoch.fetch_add(1, Ordering::AcqRel) + 1;
        topk_obs::info!("promoted to primary at epoch {epoch}");
        (true, epoch)
    }

    /// The in-memory replication window `replicate` streams tail.
    pub(crate) fn repl_log(&self) -> &ReplLog {
        &self.repl_log
    }

    /// Seal the replication window: wake every tailing stream so it can
    /// end cleanly. Called on server shutdown.
    pub fn seal_replication(&self) {
        self.repl_log.seal();
    }

    /// A point-in-time copy of this replica's progress.
    pub fn replica_status(&self) -> ReplicaStatus {
        self.replica
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clone()
    }

    /// Mutate the replica progress record (tailer-side bookkeeping).
    pub(crate) fn update_replica_status(&self, f: impl FnOnce(&mut ReplicaStatus)) {
        let mut st = self.replica.lock().unwrap_or_else(|p| p.into_inner());
        f(&mut st);
    }

    /// The `replica` JSON object shared by `stats` and `replstatus`:
    /// source, connectivity, and lag in entries + milliseconds.
    fn replica_json(&self) -> Json {
        let st = self.replica_status();
        let opt = |v: Option<u64>| v.map(|v| Json::Num(v as f64)).unwrap_or(Json::Null);
        obj(vec![
            ("source", Json::Str(st.source.clone())),
            ("connected", Json::Bool(st.connected)),
            ("applied_seq", opt(st.applied_seq)),
            ("head_seq", opt(st.head_seq)),
            ("lag_entries", opt(st.lag_entries())),
            ("lag_ms", opt(st.lag_ms())),
            ("pressure", Json::Bool(st.pressure)),
        ])
    }

    /// Body of the `replstatus` protocol response.
    pub fn replstatus_json(&self) -> Json {
        let mut members = vec![
            ("role", Json::Str(self.role().as_str().to_string())),
            ("epoch", Json::Num(self.epoch() as f64)),
            ("repl_next_seq", Json::Num(self.repl_log.next() as f64)),
        ];
        if self.role() == Role::Replica {
            members.push(("replica", self.replica_json()));
        }
        obj(members)
    }

    /// Encode the current collapsed state as snapshot bytes plus the
    /// replication cursor the stream continues from. Taking the core
    /// write lock excludes in-flight applies (which publish before they
    /// release their read guards), so the pair is consistent: everything
    /// at/after the cursor is *not* in the snapshot, everything before
    /// it is.
    pub fn snapshot_bytes(&self) -> Result<(Vec<u8>, u64), String> {
        let mut sp = topk_obs::Span::enter("service.snapshot_bytes");
        let mut core = self.write_core();
        let (field, fields) = {
            let schema = self.read_schema();
            (schema.field, schema.fields.clone().unwrap_or_default())
        };
        self.flush_locked(&mut core, field);
        let state = self.assemble_state(&mut core)?;
        let cursor = self.repl_log.next();
        drop(core);
        let bytes = snapshot::encode_snapshot(&state, &fields, field)?;
        sp.record("bytes", bytes.len());
        sp.record("cursor", cursor);
        Ok((bytes, cursor))
    }

    /// Replace the engine state from snapshot bytes received over the
    /// wire (replica bootstrap). Same guarantees as [`Self::restore`].
    pub fn restore_bytes(&self, bytes: &[u8]) -> Result<u64, String> {
        let mut sp = topk_obs::Span::enter("service.restore");
        sp.record("from_bytes", true);
        let (state, fields, field) = snapshot::decode_snapshot(bytes)?;
        let generation = self.install_state(state, fields, field)?;
        sp.record("records", generation);
        Ok(generation)
    }

    // ---- health / SLO / exposition --------------------------------------

    /// Seconds since this engine was constructed.
    pub fn uptime_seconds(&self) -> u64 {
        self.start.elapsed().as_secs()
    }

    /// Feed one served-request outcome into the rolling SLO windows.
    /// The server calls this for every query-class request (`topk`,
    /// `topr`), successes and failures alike.
    pub fn record_query_outcome(&self, latency: Duration, ok: bool) {
        self.slo.record(latency, ok);
    }

    /// The SLO tracker (reports back the `health` command).
    pub fn slo(&self) -> &SloTracker {
        &self.slo
    }

    /// Body of the `health` protocol response: overall verdict, uptime,
    /// and one per-window SLO evaluation
    /// (`docs/OBSERVABILITY.md`, *SLOs & health*).
    pub fn health_json(&self) -> Json {
        let reports = self.slo.report();
        let healthy = reports.iter().all(|r| r.healthy());
        let windows: Vec<Json> = reports
            .iter()
            .map(|r| {
                obj(vec![
                    ("window", Json::Str(r.window.to_string())),
                    ("total", Json::Num(r.total as f64)),
                    ("errors", Json::Num(r.errors as f64)),
                    ("availability_ppm", Json::Num(r.availability_ppm as f64)),
                    ("p99_micros", Json::Num(r.p99_micros as f64)),
                    ("p99_ok", Json::Bool(r.p99_ok)),
                    (
                        "error_budget_remaining_ppm",
                        Json::Num(r.error_budget_remaining_ppm as f64),
                    ),
                ])
            })
            .collect();
        obj(vec![
            ("healthy", Json::Bool(healthy)),
            ("uptime_seconds", Json::Num(self.uptime_seconds() as f64)),
            ("generation", Json::Num(self.generation() as f64)),
            ("role", Json::Str(self.role().as_str().to_string())),
            ("epoch", Json::Num(self.epoch() as f64)),
            (
                "slo",
                obj(vec![
                    (
                        "p99_target_micros",
                        Json::Num(self.slo.p99_target_micros() as f64),
                    ),
                    (
                        "availability_target_ppm",
                        Json::Num(self.slo.availability_target_ppm() as f64),
                    ),
                    ("windows", Json::Arr(windows)),
                ]),
            ),
            (
                "overload",
                obj(vec![
                    ("brownout", Json::Bool(self.overload.brownout_active())),
                    (
                        "memory_bytes",
                        Json::Num(self.overload.total_bytes() as f64),
                    ),
                    (
                        "memory_budget_bytes",
                        Json::Num(self.overload.budget() as f64),
                    ),
                    (
                        "memory_high_watermark",
                        Json::Num(self.overload.high_watermark() as f64),
                    ),
                    (
                        "memory_low_watermark",
                        Json::Num(self.overload.low_watermark() as f64),
                    ),
                    (
                        "memory_pressure_rejections",
                        Json::Num(Metrics::get(&self.metrics.memory_pressure) as f64),
                    ),
                    (
                        "degraded_queries",
                        Json::Num(Metrics::get(&self.metrics.degraded_queries) as f64),
                    ),
                    (
                        "admission_sheds",
                        Json::Num(Metrics::get(&self.metrics.admission_sheds) as f64),
                    ),
                ]),
            ),
        ])
    }

    /// Full Prometheus exposition: refresh the point-in-time gauges
    /// (uptime, SLO windows, journal segment sizes), then render the
    /// registry prefixed with a `topk_build_info` identity line
    /// (version + git revision as labels, constant value 1 — the
    /// standard build-info idiom).
    pub fn prometheus_text(&self) -> String {
        self.uptime_gauge
            .store(self.uptime_seconds() as i64, Ordering::Relaxed);
        for (r, g) in self.slo.report().iter().zip(&self.slo_gauges) {
            g[0].store(r.p99_micros as i64, Ordering::Relaxed);
            g[1].store(r.availability_ppm as i64, Ordering::Relaxed);
            g[2].store(r.error_budget_remaining_ppm as i64, Ordering::Relaxed);
        }
        if let Some(j) = &self.journal {
            for (i, g) in self.journal_gauges.iter().enumerate() {
                g.store(j.segment(i).len_bytes() as i64, Ordering::Relaxed);
            }
        }
        self.repl_gauges[0].store(self.epoch() as i64, Ordering::Relaxed);
        if self.role() == Role::Replica {
            let st = self.replica_status();
            self.repl_gauges[1].store(st.connected as i64, Ordering::Relaxed);
            self.repl_gauges[2].store(st.lag_entries().unwrap_or(0) as i64, Ordering::Relaxed);
            self.repl_gauges[3].store(st.lag_ms().unwrap_or(0) as i64, Ordering::Relaxed);
        } else {
            self.repl_gauges[1].store(0, Ordering::Relaxed);
            self.repl_gauges[2].store(0, Ordering::Relaxed);
            self.repl_gauges[3].store(0, Ordering::Relaxed);
        }
        let mut text = format!(
            "# TYPE topk_build_info gauge\ntopk_build_info{{version=\"{}\",rev=\"{}\"}} 1\n",
            env!("CARGO_PKG_VERSION"),
            env!("TOPK_GIT_REV"),
        );
        text.push_str(&self.metrics.registry().prometheus_text());
        text
    }

    /// Engine-level stats body (per-shard detail and metrics included).
    pub fn stats_json(&self) -> Json {
        let core = self.read_core();
        let fields = match &self.read_schema().fields {
            Some(f) => Json::Arr(f.iter().map(|s| Json::Str(s.clone())).collect()),
            None => Json::Null,
        };
        let (mut collapsed, mut pending, mut groups) = (0usize, 0usize, 0usize);
        let mut detail = Vec::with_capacity(core.shards.len());
        for (i, m) in core.shards.iter().enumerate() {
            let s = self.lock_shard(m);
            collapsed += s.inc.len();
            pending += s.pending.len();
            groups += s.inc.group_count();
            detail.push(obj(vec![
                ("shard", Json::Num(i as f64)),
                ("records", Json::Num(s.inc.len() as f64)),
                ("pending", Json::Num(s.pending.len() as f64)),
                ("groups", Json::Num(s.inc.group_count() as f64)),
                (
                    "memory_bytes",
                    Json::Num(self.overload.shard_bytes(i) as f64),
                ),
            ]));
        }
        let generation = self.generation.load(Ordering::Acquire);
        let mut members = vec![
            ("records", Json::Num(generation as f64)),
            ("collapsed", Json::Num(collapsed as f64)),
            ("pending", Json::Num(pending as f64)),
            ("groups", Json::Num(groups as f64)),
            ("generation", Json::Num(generation as f64)),
            ("role", Json::Str(self.role().as_str().to_string())),
            ("epoch", Json::Num(self.epoch() as f64)),
            ("distinct_values", Json::Num(core.seen.len() as f64)),
            (
                "memory_bytes",
                Json::Num(self.overload.total_bytes() as f64),
            ),
            (
                "memory_budget_bytes",
                Json::Num(self.overload.budget() as f64),
            ),
            ("fields", fields),
            ("shards", Json::Num(core.shards.len() as f64)),
            ("shard_detail", Json::Arr(detail)),
            ("cache_entries", Json::Num(self.lock_cache().len() as f64)),
            ("metrics", self.metrics.summary()),
        ];
        if self.role() == Role::Replica {
            members.push(("replica", self.replica_json()));
        }
        obj(members)
    }

    // ---- snapshot / restore --------------------------------------------

    /// Stitch the per-shard states into one global [`IncrementalState`]
    /// in gid order. The union-find parent is canonicalized (min-member
    /// form), and block keys are unique to one shard (partition
    /// contract), so the assembled state — and therefore the snapshot
    /// file — is byte-identical at every shard count.
    fn assemble_state(&self, core: &mut Core) -> Result<IncrementalState, String> {
        let Core { shards, global, .. } = core;
        let shard_refs: Vec<&Shard> = shards.iter_mut().map(|m| &*Self::shard_mut(m)).collect();
        let mut exports = Vec::with_capacity(shard_refs.len());
        for s in &shard_refs {
            let ex = s.inc.export_state();
            // A live union-find is always a valid forest; still, surface
            // rather than panic if that invariant ever breaks.
            let mut uf = UnionFind::from_vec(ex.parent.clone())?;
            let canon = uf.canonical_parent();
            exports.push((ex, canon));
        }
        let mut records = Vec::with_capacity(global.len());
        let mut parent = Vec::with_capacity(global.len());
        for &(si, li) in global.iter() {
            let (ex, canon) = &exports[si as usize];
            records.push(ex.records[li as usize].clone());
            // Min local member maps to min global member: gids are
            // strictly increasing per shard.
            parent.push(shard_refs[si as usize].gids[canon[li as usize] as usize]);
        }
        let mut blocks: Vec<(u64, Vec<u32>)> = Vec::new();
        for (si, (ex, _)) in exports.iter().enumerate() {
            let gids = &shard_refs[si].gids;
            for (key, members) in &ex.blocks {
                blocks.push((*key, members.iter().map(|&m| gids[m as usize]).collect()));
            }
        }
        blocks.sort_unstable_by_key(|&(key, _)| key);
        Ok(IncrementalState {
            records,
            parent,
            blocks,
            generation: self.generation.load(Ordering::Acquire),
        })
    }

    /// Write a snapshot of the collapsed state to `path`. Pending
    /// records are flushed first so the snapshot is self-contained.
    /// With a journal attached, a successful snapshot truncates every
    /// segment (and deletes orphan segments) — the snapshot now carries
    /// every journaled ingest. Truncation happens while the core lock is
    /// still held, so no concurrent ingest can land in the journal
    /// between the snapshot and the truncation and be silently lost.
    pub fn snapshot(&self, path: &Path) -> Result<u64, String> {
        let mut sp = topk_obs::Span::enter("service.snapshot");
        let mut core = self.write_core();
        let (field, fields) = {
            let schema = self.read_schema();
            (schema.field, schema.fields.clone().unwrap_or_default())
        };
        self.flush_locked(&mut core, field);
        let state = self.assemble_state(&mut core)?;
        let bytes = snapshot::write_snapshot(path, &state, &fields, field)?;
        if let Some(journal) = &self.journal {
            journal.truncate_all()?;
            Metrics::incr(&self.metrics.journal_truncations);
        }
        drop(core);
        Metrics::incr(&self.metrics.snapshots);
        sp.record("bytes", bytes);
        Ok(bytes)
    }

    /// Project a global snapshot state onto this engine's shards:
    /// re-tokenize, route every record, split the canonicalized
    /// union-find and the blocking index per shard, and rebuild corpus
    /// statistics. Fails (without touching engine state) when the file
    /// is internally inconsistent or its groups/blocks straddle the
    /// partition — i.e. it was not produced by these predicates.
    #[allow(clippy::type_complexity)]
    fn project_state(
        &self,
        state: IncrementalState,
        field: FieldId,
    ) -> Result<(Vec<Shard>, Vec<(u32, u32)>, CorpusStats, HashSet<u64>, f64), String> {
        let IncrementalState {
            records,
            parent,
            blocks,
            generation: _,
        } = state;
        let n = records.len();
        if parent.len() != n {
            return Err(format!(
                "state has {n} records but {} union-find entries",
                parent.len()
            ));
        }
        let n_shards = self.cfg.shards;
        let router = ShardRouter::new(n_shards);
        let toks: Vec<TokenizedRecord> = records
            .iter()
            .map(|(texts, w)| TokenizedRecord::from_fields(texts, *w))
            .collect();
        let mut uf = UnionFind::from_vec(parent)?;
        let canon = uf.canonical_parent();
        let mut global: Vec<(u32, u32)> = Vec::with_capacity(n);
        let mut s_records: Vec<Vec<(Vec<String>, f64)>> = vec![Vec::new(); n_shards];
        let mut s_gids: Vec<Vec<u32>> = vec![Vec::new(); n_shards];
        for (gid, (t, rec)) in toks.iter().zip(&records).enumerate() {
            let si = router.route(&t.field(field).text) as u32;
            global.push((si, s_records[si as usize].len() as u32));
            s_records[si as usize].push(rec.clone());
            s_gids[si as usize].push(gid as u32);
        }
        let mut s_parent: Vec<Vec<u32>> = vec![Vec::new(); n_shards];
        for gid in 0..n {
            let p = canon[gid] as usize;
            let (si, _) = global[gid];
            let (psi, pli) = global[p];
            if psi != si {
                return Err(format!(
                    "snapshot group {{{p}, {gid}}} spans shards — the file was not \
                     produced under this engine's blocking partition"
                ));
            }
            s_parent[si as usize].push(pli);
        }
        let mut s_blocks: Vec<Vec<(u64, Vec<u32>)>> = vec![Vec::new(); n_shards];
        for (key, members) in blocks {
            let si = match members.first() {
                Some(&m0) if (m0 as usize) < n => global[m0 as usize].0,
                Some(&m0) => {
                    return Err(format!("block {key:#x} references record {m0} >= {n}"));
                }
                None => (key % n_shards as u64) as u32,
            };
            let mut locals = Vec::with_capacity(members.len());
            for m in members {
                if m as usize >= n {
                    return Err(format!("block {key:#x} references record {m} >= {n}"));
                }
                let (msi, mli) = global[m as usize];
                if msi != si {
                    return Err(format!(
                        "snapshot block {key:#x} spans shards — the file was not \
                         produced under this engine's blocking partition"
                    ));
                }
                locals.push(mli);
            }
            s_blocks[si as usize].push((key, locals));
        }
        let mut stats = CorpusStats::new();
        let mut seen = HashSet::new();
        for t in &toks {
            let f = t.field(field);
            if seen.insert(topk_text::hash::hash_str(&f.text)) {
                stats.add_document(&f.words);
            }
        }
        let mut out = Vec::with_capacity(n_shards);
        for si in 0..n_shards {
            let n_local = s_records[si].len() as u64;
            let mut blocks = std::mem::take(&mut s_blocks[si]);
            blocks.sort_unstable_by_key(|&(key, _)| key);
            let inc = IncrementalDedup::from_state(IncrementalState {
                records: std::mem::take(&mut s_records[si]),
                parent: std::mem::take(&mut s_parent[si]),
                blocks,
                generation: n_local,
            })?;
            out.push(Shard {
                inc,
                gids: std::mem::take(&mut s_gids[si]),
                pending: Vec::new(),
                groups: None,
                sample: Sketch::with_defaults(),
            });
        }
        // Rebuild the per-shard sample sketches and the max-weight
        // bound: priorities are pure functions of (seed, partition,
        // gid), so the rebuilt sketches equal the ones an engine that
        // ingested this stream live would hold.
        let mut max_weight = 0.0f64;
        for (gid, t) in toks.iter().enumerate() {
            let (si, _) = global[gid];
            out[si as usize]
                .sample
                .offer(gid as u64, ShardRouter::key(&t.field(field).text), t);
            if t.weight() > max_weight {
                max_weight = t.weight();
            }
        }
        Ok((out, global, stats, seen, max_weight))
    }

    /// Replace the engine state with a snapshot read from `path`. Corpus
    /// statistics are rebuilt deterministically from the restored
    /// records; no predicate work is replayed. A corrupt, truncated, or
    /// partition-incompatible snapshot is rejected *before* any lock is
    /// taken, so the previous state survives a failed restore untouched.
    /// With a journal attached, a successful restore truncates it:
    /// journaled ingests are deltas against the state they were applied
    /// to, which the restore just discarded.
    pub fn restore(&self, path: &Path) -> Result<u64, String> {
        let mut sp = topk_obs::Span::enter("service.restore");
        let (state, fields, field) = snapshot::read_snapshot(path)?;
        let generation = self.install_state(state, fields, field)?;
        Metrics::incr(&self.metrics.restores);
        sp.record("records", generation);
        Ok(generation)
    }

    /// Swap in a decoded snapshot state ([`Self::restore`] from a file,
    /// [`Self::restore_bytes`] from the replication bootstrap stream).
    fn install_state(
        &self,
        state: IncrementalState,
        fields: Vec<String>,
        field: FieldId,
    ) -> Result<u64, String> {
        if let Some(cfg_fields) = &self.cfg.fields {
            if !fields.is_empty() && *cfg_fields != fields {
                return Err(format!(
                    "snapshot schema {fields:?} differs from --fields {cfg_fields:?}"
                ));
            }
        }
        let generation = state.generation;
        let (new_shards, global, stats, seen, max_weight) = self.project_state(state, field)?;
        let n = global.len() as u64;
        let mut core = self.write_core();
        if let Some(journal) = &self.journal {
            journal.truncate_all()?;
            Metrics::incr(&self.metrics.journal_truncations);
        }
        *core = Core {
            shards: new_shards.into_iter().map(Mutex::new).collect(),
            global,
            stats,
            seen,
            topr_toks: None,
            max_weight,
        };
        {
            let mut schema = self.write_schema();
            schema.fields = if fields.is_empty() {
                None
            } else {
                Some(fields)
            };
            schema.field = field;
        }
        self.generation.store(generation, Ordering::Release);
        self.next_rid.store(n, Ordering::Release);
        // Drop the in-memory replication window: cursors tailing the
        // replaced state no longer describe this engine, so every
        // follower is forced to re-bootstrap from a fresh snapshot.
        self.repl_log.invalidate();
        let mut shard_bytes = Vec::with_capacity(core.shards.len());
        for (i, m) in core.shards.iter_mut().enumerate() {
            let s = Self::shard_mut(m);
            self.shard_gauges[i]
                .0
                .store(s.inc.len() as i64, Ordering::Relaxed);
            self.shard_gauges[i]
                .1
                .store(s.inc.group_count() as i64, Ordering::Relaxed);
            self.shard_gauges[i]
                .2
                .store(s.sample.len() as i64, Ordering::Relaxed);
            shard_bytes.push(s.inc.records().iter().map(overload::record_bytes).sum());
        }
        // Memory accounting restarts from what is actually resident —
        // this is how pressure clears after an operator restores a
        // smaller snapshot.
        self.overload.reset(&shard_bytes);
        drop(core);
        self.lock_cache().clear();
        Ok(generation)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn engine() -> Engine {
        Engine::new(EngineConfig {
            parallelism: Parallelism::sequential(),
            ..Default::default()
        })
        .unwrap()
    }

    fn row(name: &str) -> (Vec<String>, f64) {
        (vec![name.to_string()], 1.0)
    }

    #[test]
    fn ingest_then_query_groups_duplicates() {
        let e = engine();
        e.ingest(vec![
            row("Grace Hopper"),
            row("grace hopper"),
            row("Ada Lovelace"),
        ])
        .unwrap();
        assert_eq!(e.generation(), 3);
        let body = e.query_topk(2).unwrap();
        let groups = body.get("groups").unwrap().as_arr().unwrap();
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].get("size").unwrap().as_usize(), Some(2));
        assert_eq!(groups[0].get("rep").unwrap().as_str(), Some("grace hopper"));
    }

    #[test]
    fn cache_hits_on_quiet_stream_and_invalidates_on_ingest() {
        let e = engine();
        e.ingest(vec![row("a b"), row("a b"), row("c d")]).unwrap();
        let first = e.query_topk(2).unwrap();
        let second = e.query_topk(2).unwrap();
        assert_eq!(first.to_string(), second.to_string());
        assert_eq!(Metrics::get(&e.metrics.cache_hits), 1);
        assert_eq!(Metrics::get(&e.metrics.cache_misses), 1);
        // Ingestion invalidates: the next query recomputes.
        e.ingest(vec![row("e f")]).unwrap();
        e.query_topk(2).unwrap();
        assert_eq!(Metrics::get(&e.metrics.cache_hits), 1);
        assert_eq!(Metrics::get(&e.metrics.cache_misses), 2);
        // Different parameters are different cache keys.
        e.query_topk(1).unwrap();
        assert_eq!(Metrics::get(&e.metrics.cache_misses), 3);
    }

    #[test]
    fn schema_fixed_by_first_record() {
        let e = engine();
        e.ingest(vec![(vec!["x".into(), "y".into()], 1.0)]).unwrap();
        let err = e.ingest(vec![row("only one field")]).unwrap_err();
        assert!(err.contains("fields"), "{err}");
        let stats = e.stats_json().to_string();
        assert!(stats.contains("\"fields\":[\"col0\",\"col1\"]"), "{stats}");
    }

    #[test]
    fn rejects_bad_weight_and_unknown_name_field() {
        let e = engine();
        assert!(e.ingest(vec![(vec!["x".into()], f64::NAN)]).is_err());
        assert!(e.ingest(vec![(vec!["x".into()], -1.0)]).is_err());
        let err = Engine::new(EngineConfig {
            fields: Some(vec!["a".into()]),
            name_field: Some("missing".into()),
            ..Default::default()
        })
        .err()
        .unwrap();
        assert!(err.contains("missing"), "{err}");
    }

    #[test]
    fn topr_orders_by_weight_with_bounds() {
        let e = engine();
        let mut rows = Vec::new();
        for _ in 0..5 {
            rows.push(row("big group"));
        }
        rows.push(row("small group"));
        e.ingest(rows).unwrap();
        let body = e.query_topr(2).unwrap();
        let entries = body.get("entries").unwrap().as_arr().unwrap();
        assert!(!entries.is_empty());
        let w0 = entries[0].get("weight").unwrap().as_f64().unwrap();
        let ub0 = entries[0].get("upper_bound").unwrap().as_f64().unwrap();
        assert!(w0 >= 5.0 - 1e-9);
        assert!(ub0 >= w0);
    }

    #[test]
    fn sharded_engine_answers_like_a_single_engine() {
        let single = engine();
        let sharded = Engine::new(EngineConfig {
            parallelism: Parallelism::sequential(),
            shards: 4,
            ..Default::default()
        })
        .unwrap();
        let names = [
            "grace hopper",
            "Grace  Hopper",
            "g hopper",
            "ada lovelace",
            "alan turing",
            "a turing",
            "katherine johnson",
            "annie easley",
        ];
        for (i, name) in names.iter().enumerate() {
            let r = vec![(vec![name.to_string()], 1.0 + (i % 3) as f64)];
            single.ingest(r.clone()).unwrap();
            sharded.ingest(r).unwrap();
        }
        for k in [1, 2, 3, 50] {
            assert_eq!(
                single.query_topk(k).unwrap().to_string(),
                sharded.query_topk(k).unwrap().to_string(),
                "topk k={k}"
            );
            assert_eq!(
                single.query_topr(k).unwrap().to_string(),
                sharded.query_topr(k).unwrap().to_string(),
                "topr k={k}"
            );
        }
        assert_eq!(single.generation(), sharded.generation());
    }

    #[test]
    fn approx_answers_are_shard_count_invariant() {
        // Bottom-m sketches merge to the global bottom-m, so the
        // approximate answer must be byte-identical at any shard count.
        let engines: Vec<Engine> = [1usize, 2, 4, 8]
            .iter()
            .map(|&shards| {
                Engine::new(EngineConfig {
                    parallelism: Parallelism::sequential(),
                    shards,
                    ..Default::default()
                })
                .unwrap()
            })
            .collect();
        let names = [
            "grace hopper",
            "Grace  Hopper",
            "g hopper",
            "ada lovelace",
            "alan turing",
            "a turing",
            "katherine johnson",
            "annie easley",
            "annie  easley",
            "mary jackson",
        ];
        for (i, name) in names.iter().enumerate() {
            let r = vec![(vec![name.to_string()], 1.0 + (i % 3) as f64)];
            for e in &engines {
                e.ingest(r.clone()).unwrap();
            }
        }
        for k in [1, 2, 3, 50] {
            for eps in [0.05, 0.5, 0.9] {
                let want = engines[0].query_topk_approx(k, eps).unwrap().to_string();
                let want_r = engines[0].query_topr_approx(k, eps).unwrap().to_string();
                for e in &engines[1..] {
                    assert_eq!(
                        e.query_topk_approx(k, eps).unwrap().to_string(),
                        want,
                        "topk k={k} eps={eps}"
                    );
                    assert_eq!(
                        e.query_topr_approx(k, eps).unwrap().to_string(),
                        want_r,
                        "topr k={k} eps={eps}"
                    );
                }
            }
        }
    }

    #[test]
    fn approx_with_full_sample_matches_exact_topk() {
        // A tight epsilon makes the sample the whole corpus; every
        // contested group escalates, so ranks, sizes and weights must
        // equal the exact answer.
        let e = engine();
        let mut rows = Vec::new();
        for _ in 0..6 {
            rows.push(row("grace hopper"));
        }
        for _ in 0..3 {
            rows.push(row("ada lovelace"));
        }
        rows.push(row("alan turing"));
        e.ingest(rows).unwrap();
        let exact = e.query_topk(2).unwrap();
        let approx = e.query_topk_approx(2, 0.05).unwrap();
        let eg = exact.get("groups").unwrap().as_arr().unwrap();
        let ag = approx.get("groups").unwrap().as_arr().unwrap();
        assert_eq!(eg.len(), ag.len());
        for (ex, ap) in eg.iter().zip(ag) {
            assert_eq!(
                ex.get("rep").unwrap().as_str(),
                ap.get("rep").unwrap().as_str()
            );
            assert_eq!(
                ex.get("size").unwrap().as_usize(),
                ap.get("size").unwrap().as_usize()
            );
            assert_eq!(
                ex.get("weight").unwrap().as_f64(),
                ap.get("estimate").unwrap().as_f64()
            );
            assert_eq!(ap.get("escalated").unwrap().as_bool(), Some(true));
        }
        assert!(Metrics::get(&e.metrics.approx_escalations) >= 1);
    }

    #[test]
    fn approx_queries_cache_under_their_own_keys() {
        let e = engine();
        e.ingest(vec![row("a b"), row("a b"), row("c d")]).unwrap();
        let first = e.query_topk_approx(2, 0.1).unwrap().to_string();
        let second = e.query_topk_approx(2, 0.1).unwrap().to_string();
        assert_eq!(first, second);
        assert_eq!(Metrics::get(&e.metrics.cache_hits), 1);
        assert_eq!(Metrics::get(&e.metrics.cache_misses), 1);
        // Exact and approx never share a cache entry, nor do two epsilons.
        e.query_topk(2).unwrap();
        e.query_topk_approx(2, 0.2).unwrap();
        assert_eq!(Metrics::get(&e.metrics.cache_misses), 3);
        assert_eq!(Metrics::get(&e.metrics.approx_queries), 3);
    }

    #[test]
    fn approx_on_empty_engine_and_bad_epsilon() {
        let e = engine();
        let body = e.query_topk_approx(3, 0.1).unwrap();
        assert_eq!(
            body.get("groups").unwrap().as_arr().map(<[_]>::len),
            Some(0)
        );
        assert_eq!(body.get("population").unwrap().as_usize(), Some(0));
        assert!(e.query_topk_approx(3, 0.0).is_err());
        assert!(e.query_topk_approx(3, 1.0).is_err());
        assert!(e.query_topk_approx(3, f64::NAN).is_err());
    }

    #[test]
    fn failed_restore_leaves_previous_state_intact() {
        let dir = std::env::temp_dir().join("topk_engine_restore_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corrupt.snap");
        // A valid snapshot of some other state...
        let other = engine();
        other.ingest(vec![row("x y"), row("z w")]).unwrap();
        other.snapshot(&path).unwrap();
        let good = std::fs::read(&path).unwrap();
        // ...and the engine under test, with answers we can compare.
        let e = engine();
        e.ingest(vec![row("grace hopper"), row("grace  hopper")])
            .unwrap();
        let before = e.query_topk(1).unwrap().to_string();
        // Corrupt the snapshot at several offsets (header, early
        // payload, middle, checksum tail): every restore must fail and
        // every failure must leave the engine answering exactly as
        // before.
        for offset in [0, 5, good.len() / 3, good.len() / 2, good.len() - 1] {
            let mut bad = good.clone();
            bad[offset] ^= 0x20;
            std::fs::write(&path, &bad).unwrap();
            assert!(
                e.restore(&path).is_err(),
                "corruption at offset {offset} restored"
            );
            assert_eq!(
                e.query_topk(1).unwrap().to_string(),
                before,
                "state changed after rejected restore (offset {offset})"
            );
            assert_eq!(e.generation(), 2);
        }
        // Truncations likewise.
        for len in [0, 8, good.len() / 2, good.len() - 1] {
            std::fs::write(&path, &good[..len]).unwrap();
            assert!(e.restore(&path).is_err(), "truncation to {len} restored");
            assert_eq!(e.query_topk(1).unwrap().to_string(), before);
        }
        // The intact snapshot still restores (the engine is not wedged).
        std::fs::write(&path, &good).unwrap();
        assert_eq!(e.restore(&path).unwrap(), 2);
    }

    #[test]
    fn journal_records_ingests_and_snapshot_truncates() {
        let dir = std::env::temp_dir().join("topk_engine_journal_test");
        std::fs::create_dir_all(&dir).unwrap();
        let jpath = dir.join("engine.wal");
        let _ = std::fs::remove_file(&jpath);
        let spath = dir.join("engine.snap");
        let (journal, recovery) = crate::journal::JournalSet::open(&jpath, 1).unwrap();
        assert!(recovery.rows.is_empty());
        let mut e = engine();
        e.attach_journal(journal);
        e.ingest(vec![row("ada lovelace")]).unwrap();
        e.ingest(vec![row("ada  lovelace")]).unwrap();
        assert_eq!(Metrics::get(&e.metrics.journal_appends), 2);
        // Replaying what the journal holds reproduces the engine.
        let (_j2, recovery) = {
            // Reopen by a second handle (the file is shared).
            crate::journal::JournalSet::open(&jpath, 1).unwrap()
        };
        assert_eq!(recovery.entries, 2);
        assert_eq!(recovery.rows.len(), 2);
        let replayed = engine();
        replayed.replay_rows(recovery).unwrap();
        assert_eq!(
            replayed.query_topk(1).unwrap().to_string(),
            e.query_topk(1).unwrap().to_string()
        );
        // A successful snapshot empties the journal: those entries are
        // now covered by the snapshot file.
        e.snapshot(&spath).unwrap();
        assert_eq!(Metrics::get(&e.metrics.journal_truncations), 1);
        let (_j3, recovery) = crate::journal::JournalSet::open(&jpath, 1).unwrap();
        assert!(recovery.rows.is_empty(), "journal truncated on snapshot");
    }

    #[test]
    fn empty_engine_answers_empty() {
        let e = engine();
        let body = e.query_topk(3).unwrap();
        assert_eq!(body.get("groups").unwrap().as_arr().unwrap().len(), 0);
        let body = e.query_topr(3).unwrap();
        assert_eq!(body.get("certified").unwrap().as_bool(), Some(false));
    }

    fn sharded(shards: usize, budget: u64) -> Engine {
        Engine::new(EngineConfig {
            parallelism: Parallelism::sequential(),
            shards,
            memory_budget_bytes: budget,
            ..Default::default()
        })
        .unwrap()
    }

    #[test]
    fn poisoned_locks_recover_and_answers_stay_identical() {
        let e = Arc::new(sharded(2, 0));
        let rows = vec![
            row("grace hopper"),
            row("grace  hopper"),
            row("ada lovelace"),
        ];
        e.ingest(rows.clone()).unwrap();
        let want = e.query_topk(2).unwrap().to_string();
        let recoveries = Metrics::get(&e.metrics.lock_recoveries);
        // Panic while holding the core write lock: poisons it.
        let p = Arc::clone(&e);
        let h = std::thread::spawn(move || {
            let _g = p.core.write().unwrap();
            panic!("poison the core lock");
        });
        assert!(h.join().is_err());
        assert_eq!(e.query_topk(2).unwrap().to_string(), want);
        // Panic while holding a shard mutex: poisons it.
        let p = Arc::clone(&e);
        let h = std::thread::spawn(move || {
            let core = p.read_core();
            let _g = core.shards[0].lock().unwrap();
            panic!("poison a shard mutex");
        });
        assert!(h.join().is_err());
        e.ingest(vec![row("alan turing")]).unwrap();
        assert!(
            Metrics::get(&e.metrics.lock_recoveries) > recoveries,
            "poison recovery should be counted"
        );
        // After both recoveries the engine answers byte-identically to a
        // fresh engine fed the same stream.
        let fresh = sharded(2, 0);
        fresh.ingest(rows).unwrap();
        fresh.ingest(vec![row("alan turing")]).unwrap();
        assert_eq!(
            e.query_topk(3).unwrap().to_string(),
            fresh.query_topk(3).unwrap().to_string()
        );
        assert_eq!(
            e.query_topr(3).unwrap().to_string(),
            fresh.query_topr(3).unwrap().to_string()
        );
    }

    #[test]
    fn memory_budget_applies_backpressure_not_death() {
        let rows: Vec<_> = (0..8).map(|i| row(&format!("person number {i}"))).collect();
        // Probe run measures what the stream costs; accounting is always
        // on, budget or not.
        let probe = engine();
        probe.ingest(rows.clone()).unwrap();
        let resident = probe.overload().total_bytes();
        assert!(resident > 0);
        let budget = resident + resident / 8;
        let e = sharded(1, budget);
        e.ingest(rows).unwrap();
        let err = e
            .ingest((0..64).map(|i| row(&format!("overflow {i}"))).collect())
            .unwrap_err();
        assert!(err.starts_with("memory_pressure"), "{err}");
        assert_eq!(Metrics::get(&e.metrics.memory_pressure), 1);
        // The gauge never crossed the budget, and the engine still
        // answers queries.
        assert!(e.overload().total_bytes() <= budget);
        assert!(e.query_topk(3).is_ok());
    }

    #[test]
    fn expired_deadline_aborts_without_burning_work() {
        let e = engine();
        e.ingest(vec![row("grace hopper"), row("ada lovelace")])
            .unwrap();
        let expired = Some(Instant::now() - Duration::from_millis(1));
        for rank in [false, true] {
            for approx in [None, Some(0.1)] {
                let err = e.query_with(rank, 2, approx, false, expired).unwrap_err();
                assert!(err.starts_with("deadline_exceeded"), "{err}");
            }
        }
        assert_eq!(Metrics::get(&e.metrics.deadline_exceeded), 4);
        // A generous deadline answers identically to no deadline.
        let far = Some(Instant::now() + Duration::from_secs(60));
        assert_eq!(
            e.query_with(false, 2, None, false, far)
                .unwrap()
                .to_string(),
            e.query_topk(2).unwrap().to_string()
        );
    }

    #[test]
    fn brownout_degrades_exact_queries_and_recovers() {
        let rows: Vec<_> = (0..8).map(|i| row(&format!("person number {i}"))).collect();
        let probe = engine();
        probe.ingest(rows.clone()).unwrap();
        let resident = probe.overload().total_bytes();
        // Budget such that the stream sits at ~89% — past the 80% high
        // watermark but under the budget, so ingest is admitted and
        // brownout engages.
        let e = sharded(1, resident + resident / 8);
        e.ingest(rows).unwrap();
        let gate = e.overload_gate(false, false, None).unwrap();
        assert_eq!(gate, Some(crate::overload::EPSILON_LIGHT));
        assert!(e.overload().brownout_active());
        assert_eq!(Metrics::get(&e.metrics.brownout_entries), 1);
        // An explicit approx request is not re-degraded.
        assert_eq!(e.overload_gate(false, true, None).unwrap(), None);
        // The degraded answer is byte-identical to an explicit approx
        // query at the same ε (same cache key, same pipeline).
        let degraded = e
            .query_with(false, 3, gate, false, None)
            .unwrap()
            .to_string();
        let explicit = e
            .query_topk_approx(3, crate::overload::EPSILON_LIGHT)
            .unwrap()
            .to_string();
        assert_eq!(degraded, explicit);
        // Restoring a smaller snapshot clears the pressure; hysteresis
        // holds the degraded tier for EXIT_STREAK evaluations, then
        // exact answers resume.
        let dir = std::env::temp_dir().join("topk_engine_brownout_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("small.snap");
        let small = engine();
        small.ingest(vec![row("grace hopper")]).unwrap();
        small.snapshot(&path).unwrap();
        e.restore(&path).unwrap();
        assert!(e.overload().total_bytes() < e.overload().low_watermark());
        for _ in 0..crate::overload::EXIT_STREAK - 1 {
            assert!(e.overload_gate(false, false, None).unwrap().is_some());
        }
        assert_eq!(e.overload_gate(false, false, None).unwrap(), None);
        assert!(!e.overload().brownout_active());
        assert_eq!(Metrics::get(&e.metrics.brownout_exits), 1);
    }
}
