//! The resident query engine: `IncrementalDedup` behind a `RwLock`, a
//! generation-keyed query cache, and incremental corpus statistics.
//!
//! # Collapse timing
//!
//! Ingested records are tokenized immediately (once — the shared
//! tokenize-once path of [`crate::corpus`]) but merged into the
//! first-level collapse *lazily, at the next query*: the sufficient
//! predicate depends on corpus statistics, and deferring the merge to
//! query time means every record is collapsed under the newest statistics
//! available. In particular, a stream that is fully ingested before its
//! first query collapses under exactly the statistics a batch run over
//! the same file would use, which is what makes served answers
//! byte-identical to the batch pipeline (`tests/serve_roundtrip.rs`).
//! Records collapsed by an *earlier* query keep their insert-time
//! decisions — the documented [`IncrementalDedup`] drift caveat.
//!
//! # Query cache
//!
//! Responses are cached keyed on the query parameters; every entry also
//! remembers the ingest generation it was computed at. Ingestion bumps
//! the generation and clears the cache, so a repeated TopK refresh on a
//! quiet stream is a hash lookup — O(1) — while any ingestion
//! invalidates exactly once. The generation check makes staleness
//! impossible even if an eviction policy ever retains entries across
//! ingests.

use std::collections::{HashMap, HashSet};
use std::path::Path;
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::Instant;

use topk_core::{IncrementalDedup, Parallelism, TopKRankQuery};
use topk_records::{FieldId, TokenizedRecord};
use topk_text::CorpusStats;

use crate::corpus::stack_from_stats;
use crate::journal::Journal;
use crate::json::{obj, Json};
use crate::metrics::Metrics;
use crate::snapshot;

/// Maximum cached responses before the cache is wiped (entries are a few
/// hundred bytes each; distinct live query shapes are few).
const CACHE_CAP: usize = 128;

/// Engine construction parameters (fixed for the server's lifetime).
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Schema field names, when fixed up front. `None` lets the first
    /// ingested record (or a restore) fix the arity, with fields named
    /// `col0`, `col1`, ...
    pub fields: Option<Vec<String>>,
    /// Name of the match field (`None` = first field).
    pub name_field: Option<String>,
    /// Rare-word document-frequency cap for the sufficient predicate.
    pub max_df: u32,
    /// 3-gram overlap fraction for the necessary predicate.
    pub min_overlap: f64,
    /// Thread budget for the query pipeline stages.
    pub parallelism: Parallelism,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            fields: None,
            name_field: None,
            max_df: 30,
            min_overlap: 0.6,
            parallelism: Parallelism::auto(),
        }
    }
}

struct CacheEntry {
    generation: u64,
    body: Json,
}

struct State {
    /// Resolved schema; `None` until the first record arrives.
    fields: Option<Vec<String>>,
    /// Match-field index (valid once `fields` is set).
    field: FieldId,
    /// The maintained first-level collapse.
    inc: IncrementalDedup,
    /// Ingested but not yet collapsed records (merged at next query).
    pending: Vec<TokenizedRecord>,
    /// Document frequencies over distinct match-field values, maintained
    /// incrementally (`seen` holds hashes of values already counted).
    stats: CorpusStats,
    seen: HashSet<u64>,
    /// Rendered responses keyed by query descriptor.
    cache: HashMap<String, CacheEntry>,
}

impl State {
    fn empty(cfg: &EngineConfig) -> Result<State, String> {
        let field = match (&cfg.fields, &cfg.name_field) {
            (Some(fields), Some(name)) => FieldId(
                fields
                    .iter()
                    .position(|f| f == name)
                    .ok_or_else(|| format!("no field named `{name}` in --fields"))?,
            ),
            _ => FieldId(0),
        };
        Ok(State {
            fields: cfg.fields.clone(),
            field,
            inc: IncrementalDedup::new(),
            pending: Vec::new(),
            stats: CorpusStats::new(),
            seen: HashSet::new(),
            cache: HashMap::new(),
        })
    }

    /// Total records ingested (collapsed + pending).
    fn generation(&self) -> u64 {
        self.inc.generation() + self.pending.len() as u64
    }

    /// Fix the schema on first contact, or validate arity against it.
    fn check_schema(&mut self, arity: usize, name_field: &Option<String>) -> Result<(), String> {
        match &self.fields {
            Some(fields) => {
                if fields.len() != arity {
                    return Err(format!(
                        "record has {arity} fields, schema has {}",
                        fields.len()
                    ));
                }
            }
            None => {
                if arity == 0 {
                    return Err("record has no fields".into());
                }
                let fields: Vec<String> = (0..arity).map(|i| format!("col{i}")).collect();
                if let Some(name) = name_field {
                    self.field = FieldId(
                        fields
                            .iter()
                            .position(|f| f == name)
                            .ok_or_else(|| format!("no field named `{name}`"))?,
                    );
                }
                self.fields = Some(fields);
            }
        }
        Ok(())
    }

    /// Count a tokenized record into the incremental corpus statistics.
    fn count_stats(&mut self, t: &TokenizedRecord) {
        let f = t.field(self.field);
        if self.seen.insert(topk_text::hash::hash_str(&f.text)) {
            self.stats.add_document(&f.words);
        }
    }

    /// Merge all pending records into the collapse under the *current*
    /// corpus statistics.
    fn flush(&mut self, cfg: &EngineConfig) {
        if self.pending.is_empty() {
            return;
        }
        let stack = stack_from_stats(
            Arc::new(self.stats.clone()),
            self.field,
            cfg.max_df,
            cfg.min_overlap,
        );
        let s = stack.levels[0].0.as_ref();
        for t in self.pending.drain(..) {
            self.inc.insert(t, s);
        }
    }
}

/// Thread-safe resident engine; the server shares one behind an `Arc`.
pub struct Engine {
    cfg: EngineConfig,
    state: RwLock<State>,
    /// Write-ahead ingest journal, when durability is enabled
    /// (`topk serve --journal`). Appended before an ingest is applied.
    journal: Option<Journal>,
    /// Counters and latency histograms (lock-free, shared with the
    /// server's stats command and shutdown log).
    pub metrics: Metrics,
}

impl Engine {
    /// Fresh engine with no records.
    pub fn new(cfg: EngineConfig) -> Result<Engine, String> {
        let state = State::empty(&cfg)?;
        Ok(Engine {
            cfg,
            state: RwLock::new(state),
            journal: None,
            metrics: Metrics::new(),
        })
    }

    /// Acquire the state write lock, recovering from poisoning: a
    /// handler that panicked while holding the lock must not wedge every
    /// later request (the state mutations are applied in full before
    /// anything that can panic runs, so the inner value stays usable).
    fn write_state(&self) -> RwLockWriteGuard<'_, State> {
        self.state.write().unwrap_or_else(|poisoned| {
            Metrics::incr(&self.metrics.lock_recoveries);
            topk_obs::warn!("engine lock poisoned by a panicked handler; recovering");
            poisoned.into_inner()
        })
    }

    /// Read-lock twin of [`Self::write_state`].
    fn read_state(&self) -> RwLockReadGuard<'_, State> {
        self.state.read().unwrap_or_else(|poisoned| {
            Metrics::incr(&self.metrics.lock_recoveries);
            topk_obs::warn!("engine lock poisoned by a panicked handler; recovering");
            poisoned.into_inner()
        })
    }

    /// Enable write-ahead journaling. Call before the engine is shared
    /// (returns the recovered entries so the caller can replay them via
    /// [`Self::replay_rows`]).
    pub fn attach_journal(&mut self, journal: Journal) {
        self.journal = Some(journal);
    }

    /// Whether a journal is attached.
    pub fn has_journal(&self) -> bool {
        self.journal.is_some()
    }

    /// Re-apply rows recovered from the journal at startup, *without*
    /// re-appending them (they are already durable). Returns the new
    /// generation.
    pub fn replay_rows(&self, entries: Vec<Vec<(Vec<String>, f64)>>) -> Result<u64, String> {
        let mut generation = self.generation();
        let mut replayed = 0u64;
        for rows in entries {
            let n = rows.len() as u64;
            // An entry that fails to apply (e.g. schema mismatch) failed
            // identically when it was first ingested — the client got an
            // error and the state did not change. Skipping it reproduces
            // that state; aborting would lose everything after it.
            match self.apply_ingest(rows, false) {
                Ok(g) => {
                    generation = g;
                    replayed += n;
                }
                Err(e) => topk_obs::warn!("journal replay: skipping bad entry: {e}"),
            }
        }
        self.metrics
            .journal_replayed_records
            .fetch_add(replayed, std::sync::atomic::Ordering::Relaxed);
        Ok(generation)
    }

    /// Ingest raw rows (field texts + weight). Fields are normalized
    /// exactly like file loading normalizes them, then tokenized once.
    /// With a journal attached, the rows are made durable *before* they
    /// are applied, so a crash at any point re-applies them on restart.
    /// Returns the new ingest generation.
    pub fn ingest(&self, rows: Vec<(Vec<String>, f64)>) -> Result<u64, String> {
        self.apply_ingest(rows, true)
    }

    /// Tokenize and apply rows to the state. When `journal` is true and
    /// a journal is attached, the rows are appended (and fsynced) while
    /// the state lock is held, *before* the state is mutated: the lock
    /// orders the append against [`Self::snapshot`]'s truncation, so an
    /// acknowledged ingest is always either in the snapshot or in the
    /// journal, never in neither. Replay passes `journal: false` — the
    /// recovered entries are already durable.
    fn apply_ingest(&self, rows: Vec<(Vec<String>, f64)>, journal: bool) -> Result<u64, String> {
        let t0 = Instant::now();
        let mut sp = topk_obs::Span::enter("service.ingest");
        sp.record("records", rows.len());
        // Validate and tokenize outside the lock.
        let mut toks = Vec::with_capacity(rows.len());
        for (fields, weight) in &rows {
            if !weight.is_finite() || *weight < 0.0 {
                return Err(format!("weight {weight} must be finite and >= 0"));
            }
            let normalized: Vec<String> = fields
                .iter()
                .map(|f| topk_text::normalize::normalize(f))
                .collect();
            toks.push(TokenizedRecord::from_fields(&normalized, *weight));
        }
        let mut state = self.write_state();
        for t in &toks {
            state.check_schema(t.arity(), &self.cfg.name_field)?;
        }
        if journal {
            if let Some(j) = &self.journal {
                j.append(&rows)
                    .map_err(|e| format!("journal append failed, ingest not applied: {e}"))?;
                Metrics::incr(&self.metrics.journal_appends);
            }
        }
        let n = toks.len();
        for t in toks {
            state.count_stats(&t);
            state.pending.push(t);
        }
        state.cache.clear(); // ingestion invalidates every cached answer
        let generation = state.generation();
        drop(state);
        self.metrics
            .ingested_records
            .fetch_add(n as u64, std::sync::atomic::Ordering::Relaxed);
        Metrics::incr(&self.metrics.ingest_requests);
        self.metrics.ingest_latency.record(t0.elapsed());
        Ok(generation)
    }

    /// Ingest records that are already normalized and tokenized (the
    /// `--preload` path: the corpus loader tokenized them, no second
    /// pass). `fields` is the file's schema.
    pub fn ingest_toks(
        &self,
        toks: Vec<TokenizedRecord>,
        fields: Vec<String>,
        field: FieldId,
    ) -> Result<u64, String> {
        let t0 = Instant::now();
        let mut sp = topk_obs::Span::enter("service.ingest");
        sp.record("records", toks.len());
        sp.record("preloaded", true);
        let mut state = self.write_state();
        if let Some(existing) = &state.fields {
            if existing.len() != fields.len() {
                return Err(format!(
                    "preload has {} fields, engine schema has {}",
                    fields.len(),
                    existing.len()
                ));
            }
        } else {
            state.fields = Some(fields);
            state.field = field;
        }
        let n = toks.len();
        for t in toks {
            state.count_stats(&t);
            state.pending.push(t);
        }
        state.cache.clear();
        let generation = state.generation();
        drop(state);
        self.metrics
            .ingested_records
            .fetch_add(n as u64, std::sync::atomic::Ordering::Relaxed);
        Metrics::incr(&self.metrics.ingest_requests);
        self.metrics.ingest_latency.record(t0.elapsed());
        Ok(generation)
    }

    /// TopK count-style query: the K heaviest collapsed groups surviving
    /// the bound/prune machinery, rendered as a JSON result body.
    pub fn query_topk(&self, k: usize) -> Result<Json, String> {
        self.cached_query(format!("topk:k={k}"), |state, cfg| {
            state.flush(cfg);
            if state.inc.is_empty() {
                return Ok(obj(vec![("groups", Json::Arr(Vec::new()))]));
            }
            let stack = stack_from_stats(
                Arc::new(state.stats.clone()),
                state.field,
                cfg.max_df,
                cfg.min_overlap,
            );
            let field = state.field;
            let groups = state.inc.query(&stack, k);
            let items: Vec<Json> = groups
                .iter()
                .take(k)
                .enumerate()
                .map(|(rank, g)| {
                    obj(vec![
                        ("rank", Json::Num((rank + 1) as f64)),
                        ("weight", Json::Num(g.weight)),
                        ("size", Json::Num(g.members.len() as f64)),
                        ("rep_id", Json::Num(g.rep as f64)),
                        (
                            "rep",
                            Json::Str(
                                state.inc.records()[g.rep as usize].field(field).text.clone(),
                            ),
                        ),
                    ])
                })
                .collect();
            Ok(obj(vec![("groups", Json::Arr(items))]))
        })
    }

    /// TopR rank-style query (§7.1): group *order* with upper bounds and
    /// a certification flag — the cheap way to keep a leaderboard fresh.
    pub fn query_topr(&self, k: usize) -> Result<Json, String> {
        self.cached_query(format!("topr:k={k}"), |state, cfg| {
            state.flush(cfg);
            if state.inc.is_empty() {
                return Ok(obj(vec![
                    ("entries", Json::Arr(Vec::new())),
                    ("certified", Json::Bool(false)),
                ]));
            }
            let stack = stack_from_stats(
                Arc::new(state.stats.clone()),
                state.field,
                cfg.max_df,
                cfg.min_overlap,
            );
            let mut q = TopKRankQuery::new(k);
            q.parallelism = cfg.parallelism;
            let res = q.run(state.inc.records(), &stack);
            let field = state.field;
            let entries: Vec<Json> = res
                .entries
                .iter()
                .enumerate()
                .map(|(rank, e)| {
                    obj(vec![
                        ("rank", Json::Num((rank + 1) as f64)),
                        ("weight", Json::Num(e.weight)),
                        ("upper_bound", Json::Num(e.upper_bound)),
                        ("size", Json::Num(e.records.len() as f64)),
                        ("rep_id", Json::Num(e.rep as f64)),
                        (
                            "rep",
                            Json::Str(
                                state.inc.records()[e.rep as usize].field(field).text.clone(),
                            ),
                        ),
                    ])
                })
                .collect();
            Ok(obj(vec![
                ("entries", Json::Arr(entries)),
                ("certified", Json::Bool(res.certified)),
            ]))
        })
    }

    /// Run `compute` through the generation-keyed cache.
    fn cached_query<F>(&self, key: String, compute: F) -> Result<Json, String>
    where
        F: FnOnce(&mut State, &EngineConfig) -> Result<Json, String>,
    {
        let t0 = Instant::now();
        let mut sp = topk_obs::Span::enter("service.query");
        if sp.is_recording() {
            sp.record("key", key.as_str());
        }
        Metrics::incr(&self.metrics.queries);
        let mut state = self.write_state();
        // Pending records change the generation at flush time, so settle
        // the generation first for a meaningful cache comparison.
        state.flush(&self.cfg);
        let generation = state.generation();
        if let Some(entry) = state.cache.get(&key) {
            if entry.generation == generation {
                let body = entry.body.clone();
                drop(state);
                Metrics::incr(&self.metrics.cache_hits);
                self.metrics.query_latency.record(t0.elapsed());
                sp.record("cache_hit", true);
                return Ok(body);
            }
        }
        Metrics::incr(&self.metrics.cache_misses);
        sp.record("cache_hit", false);
        let body = compute(&mut state, &self.cfg)?;
        if state.cache.len() >= CACHE_CAP {
            state.cache.clear();
        }
        state.cache.insert(
            key,
            CacheEntry {
                generation,
                body: body.clone(),
            },
        );
        drop(state);
        self.metrics.query_latency.record(t0.elapsed());
        Ok(body)
    }

    /// Current ingest generation (collapsed + pending records).
    pub fn generation(&self) -> u64 {
        self.read_state().generation()
    }

    /// Engine-level stats body (metrics included).
    pub fn stats_json(&self) -> Json {
        let state = self.read_state();
        let fields = match &state.fields {
            Some(f) => Json::Arr(f.iter().map(|s| Json::Str(s.clone())).collect()),
            None => Json::Null,
        };
        obj(vec![
            ("records", Json::Num(state.generation() as f64)),
            ("collapsed", Json::Num(state.inc.len() as f64)),
            ("pending", Json::Num(state.pending.len() as f64)),
            ("groups", Json::Num(state.inc.group_count() as f64)),
            ("generation", Json::Num(state.generation() as f64)),
            ("distinct_values", Json::Num(state.seen.len() as f64)),
            ("fields", fields),
            ("cache_entries", Json::Num(state.cache.len() as f64)),
            ("metrics", self.metrics.summary()),
        ])
    }

    /// Write a snapshot of the collapsed state to `path`. Pending
    /// records are flushed first so the snapshot is self-contained.
    /// With a journal attached, a successful snapshot truncates it —
    /// the snapshot now carries every journaled ingest. The journal is
    /// truncated while the state lock is still held, so no concurrent
    /// ingest can land in the journal between the snapshot and the
    /// truncation and be silently lost.
    pub fn snapshot(&self, path: &Path) -> Result<u64, String> {
        let mut sp = topk_obs::Span::enter("service.snapshot");
        let mut state = self.write_state();
        state.flush(&self.cfg);
        let fields = state.fields.clone().unwrap_or_default();
        let bytes = snapshot::write_snapshot(
            path,
            &state.inc.export_state(),
            &fields,
            state.field,
        )?;
        if let Some(journal) = &self.journal {
            journal.truncate()?;
            Metrics::incr(&self.metrics.journal_truncations);
        }
        drop(state);
        Metrics::incr(&self.metrics.snapshots);
        sp.record("bytes", bytes);
        Ok(bytes)
    }

    /// Replace the engine state with a snapshot read from `path`. Corpus
    /// statistics are rebuilt deterministically from the restored
    /// records; no predicate work is replayed. A corrupt or truncated
    /// snapshot is rejected *before* the state lock is taken, so the
    /// previous state survives a failed restore untouched. With a
    /// journal attached, a successful restore truncates it: journaled
    /// ingests are deltas against the state they were applied to, which
    /// the restore just discarded.
    pub fn restore(&self, path: &Path) -> Result<u64, String> {
        let mut sp = topk_obs::Span::enter("service.restore");
        let (inc_state, fields, field) = snapshot::read_snapshot(path)?;
        if let Some(cfg_fields) = &self.cfg.fields {
            if !fields.is_empty() && *cfg_fields != fields {
                return Err(format!(
                    "snapshot schema {fields:?} differs from --fields {cfg_fields:?}"
                ));
            }
        }
        let inc = IncrementalDedup::from_state(inc_state)?;
        let mut seen = HashSet::new();
        let mut stats = CorpusStats::new();
        for t in inc.records() {
            let f = t.field(field);
            if seen.insert(topk_text::hash::hash_str(&f.text)) {
                stats.add_document(&f.words);
            }
        }
        let generation = inc.generation();
        let mut state = self.write_state();
        if let Some(journal) = &self.journal {
            journal.truncate()?;
            Metrics::incr(&self.metrics.journal_truncations);
        }
        *state = State {
            fields: if fields.is_empty() { None } else { Some(fields) },
            field,
            inc,
            pending: Vec::new(),
            stats,
            seen,
            cache: HashMap::new(),
        };
        drop(state);
        Metrics::incr(&self.metrics.restores);
        sp.record("records", generation);
        Ok(generation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> Engine {
        Engine::new(EngineConfig {
            parallelism: Parallelism::sequential(),
            ..Default::default()
        })
        .unwrap()
    }

    fn row(name: &str) -> (Vec<String>, f64) {
        (vec![name.to_string()], 1.0)
    }

    #[test]
    fn ingest_then_query_groups_duplicates() {
        let e = engine();
        e.ingest(vec![
            row("Grace Hopper"),
            row("grace hopper"),
            row("Ada Lovelace"),
        ])
        .unwrap();
        assert_eq!(e.generation(), 3);
        let body = e.query_topk(2).unwrap();
        let groups = body.get("groups").unwrap().as_arr().unwrap();
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].get("size").unwrap().as_usize(), Some(2));
        assert_eq!(groups[0].get("rep").unwrap().as_str(), Some("grace hopper"));
    }

    #[test]
    fn cache_hits_on_quiet_stream_and_invalidates_on_ingest() {
        let e = engine();
        e.ingest(vec![row("a b"), row("a b"), row("c d")]).unwrap();
        let first = e.query_topk(2).unwrap();
        let second = e.query_topk(2).unwrap();
        assert_eq!(first.to_string(), second.to_string());
        assert_eq!(Metrics::get(&e.metrics.cache_hits), 1);
        assert_eq!(Metrics::get(&e.metrics.cache_misses), 1);
        // Ingestion invalidates: the next query recomputes.
        e.ingest(vec![row("e f")]).unwrap();
        e.query_topk(2).unwrap();
        assert_eq!(Metrics::get(&e.metrics.cache_hits), 1);
        assert_eq!(Metrics::get(&e.metrics.cache_misses), 2);
        // Different parameters are different cache keys.
        e.query_topk(1).unwrap();
        assert_eq!(Metrics::get(&e.metrics.cache_misses), 3);
    }

    #[test]
    fn schema_fixed_by_first_record() {
        let e = engine();
        e.ingest(vec![(vec!["x".into(), "y".into()], 1.0)]).unwrap();
        let err = e.ingest(vec![row("only one field")]).unwrap_err();
        assert!(err.contains("fields"), "{err}");
        let stats = e.stats_json().to_string();
        assert!(stats.contains("\"fields\":[\"col0\",\"col1\"]"), "{stats}");
    }

    #[test]
    fn rejects_bad_weight_and_unknown_name_field() {
        let e = engine();
        assert!(e.ingest(vec![(vec!["x".into()], f64::NAN)]).is_err());
        assert!(e.ingest(vec![(vec!["x".into()], -1.0)]).is_err());
        let err = Engine::new(EngineConfig {
            fields: Some(vec!["a".into()]),
            name_field: Some("missing".into()),
            ..Default::default()
        })
        .err()
        .unwrap();
        assert!(err.contains("missing"), "{err}");
    }

    #[test]
    fn topr_orders_by_weight_with_bounds() {
        let e = engine();
        let mut rows = Vec::new();
        for _ in 0..5 {
            rows.push(row("big group"));
        }
        rows.push(row("small group"));
        e.ingest(rows).unwrap();
        let body = e.query_topr(2).unwrap();
        let entries = body.get("entries").unwrap().as_arr().unwrap();
        assert!(!entries.is_empty());
        let w0 = entries[0].get("weight").unwrap().as_f64().unwrap();
        let ub0 = entries[0].get("upper_bound").unwrap().as_f64().unwrap();
        assert!(w0 >= 5.0 - 1e-9);
        assert!(ub0 >= w0);
    }

    #[test]
    fn failed_restore_leaves_previous_state_intact() {
        let dir = std::env::temp_dir().join("topk_engine_restore_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corrupt.snap");
        // A valid snapshot of some other state...
        let other = engine();
        other.ingest(vec![row("x y"), row("z w")]).unwrap();
        other.snapshot(&path).unwrap();
        let good = std::fs::read(&path).unwrap();
        // ...and the engine under test, with answers we can compare.
        let e = engine();
        e.ingest(vec![row("grace hopper"), row("grace  hopper")]).unwrap();
        let before = e.query_topk(1).unwrap().to_string();
        // Corrupt the snapshot at several offsets (header, early
        // payload, middle, checksum tail): every restore must fail and
        // every failure must leave the engine answering exactly as
        // before.
        for offset in [0, 5, good.len() / 3, good.len() / 2, good.len() - 1] {
            let mut bad = good.clone();
            bad[offset] ^= 0x20;
            std::fs::write(&path, &bad).unwrap();
            assert!(
                e.restore(&path).is_err(),
                "corruption at offset {offset} restored"
            );
            assert_eq!(
                e.query_topk(1).unwrap().to_string(),
                before,
                "state changed after rejected restore (offset {offset})"
            );
            assert_eq!(e.generation(), 2);
        }
        // Truncations likewise.
        for len in [0, 8, good.len() / 2, good.len() - 1] {
            std::fs::write(&path, &good[..len]).unwrap();
            assert!(e.restore(&path).is_err(), "truncation to {len} restored");
            assert_eq!(e.query_topk(1).unwrap().to_string(), before);
        }
        // The intact snapshot still restores (the engine is not wedged).
        std::fs::write(&path, &good).unwrap();
        assert_eq!(e.restore(&path).unwrap(), 2);
    }

    #[test]
    fn journal_records_ingests_and_snapshot_truncates() {
        let dir = std::env::temp_dir().join("topk_engine_journal_test");
        std::fs::create_dir_all(&dir).unwrap();
        let jpath = dir.join("engine.wal");
        let _ = std::fs::remove_file(&jpath);
        let spath = dir.join("engine.snap");
        let (journal, recovery) = crate::journal::Journal::open(&jpath).unwrap();
        assert!(recovery.entries.is_empty());
        let mut e = engine();
        e.attach_journal(journal);
        e.ingest(vec![row("ada lovelace")]).unwrap();
        e.ingest(vec![row("ada  lovelace")]).unwrap();
        assert_eq!(Metrics::get(&e.metrics.journal_appends), 2);
        // Replaying what the journal holds reproduces the engine.
        let (_j2, recovery) = {
            // Reopen read-only by a second handle (the file is shared).
            crate::journal::Journal::open(&jpath).unwrap()
        };
        assert_eq!(recovery.entries.len(), 2);
        let replayed = engine();
        replayed.replay_rows(recovery.entries).unwrap();
        assert_eq!(
            replayed.query_topk(1).unwrap().to_string(),
            e.query_topk(1).unwrap().to_string()
        );
        // A successful snapshot empties the journal: those entries are
        // now covered by the snapshot file.
        e.snapshot(&spath).unwrap();
        assert_eq!(Metrics::get(&e.metrics.journal_truncations), 1);
        let (_j3, recovery) = crate::journal::Journal::open(&jpath).unwrap();
        assert!(recovery.entries.is_empty(), "journal truncated on snapshot");
    }

    #[test]
    fn empty_engine_answers_empty() {
        let e = engine();
        let body = e.query_topk(3).unwrap();
        assert_eq!(body.get("groups").unwrap().as_arr().unwrap().len(), 0);
        let body = e.query_topr(3).unwrap();
        assert_eq!(body.get("certified").unwrap().as_bool(), Some(false));
    }
}
