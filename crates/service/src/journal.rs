//! Crash-safe write-ahead journal for ingests.
//!
//! Snapshots alone lose every ingest since the last explicit `snapshot`
//! command when the process dies. The journal closes that window: each
//! `ingest` request is appended here — length-prefixed and checksummed —
//! *before* it is applied to the engine, so a `kill -9` at any byte
//! boundary recovers to exactly the state produced by re-running the
//! surviving (fully appended) ingests. A successful snapshot truncates
//! the journal, because the snapshot now carries everything the journal
//! was protecting.
//!
//! With a sharded engine the journal becomes a [`JournalSet`]: one
//! segment file per shard (`base` for shard 0, `base.s1`, `base.s2`, …
//! for the rest), each an independent [`Journal`]. Rows carry a global
//! record id (`rid`) so recovery can merge the segments back into the
//! exact ingest order regardless of how the rows were fanned out.
//! Opening a set with fewer shards than it was written with treats the
//! surplus segments as *orphans*: their rows are recovered and replayed
//! like any others, and the files are deleted only once a snapshot
//! captures their contents ([`JournalSet::truncate_all`]).
//!
//! # Format (version 2, little-endian)
//!
//! ```text
//! magic   b"TKJL"
//! version u32                 (readers reject versions they don't know)
//! entries, each:
//!   len      u32              (payload byte count)
//!   payload  len bytes:
//!     rows   u32 count, then per row:
//!            u64 record id (rid),
//!            u32 field count, fields as strings (u32 byte-len + UTF-8),
//!            f64 weight (bit pattern)
//!   checksum u64              (FNV-1a over the payload bytes)
//! ```
//!
//! Version 1 files (rows without rids) are upgraded in place on open:
//! the intact prefix is parsed, rids are synthesized in append order,
//! and the file is atomically rewritten as version 2 before any new
//! append — old journals stay replayable across the format bump.
//!
//! A crash mid-append leaves a torn tail: a short length/payload/checksum
//! or a checksum mismatch. [`Journal::open`] stops replay at the first
//! torn or corrupt entry, truncates the file back to the last good byte,
//! and reports how much it dropped — the dropped suffix is by
//! construction an ingest that was never acknowledged.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

const MAGIC: &[u8; 4] = b"TKJL";
/// Current journal format version.
pub const VERSION: u32 = 2;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &b in bytes {
        hash = (hash ^ b as u64).wrapping_mul(FNV_PRIME);
    }
    hash
}

/// `u32::from_le_bytes` over the first 4 bytes of a checked slice.
fn le_u32(bytes: &[u8]) -> u32 {
    let mut a = [0u8; 4];
    a.copy_from_slice(&bytes[..4]);
    u32::from_le_bytes(a)
}

/// `u64::from_le_bytes` over the first 8 bytes of a checked slice.
fn le_u64(bytes: &[u8]) -> u64 {
    let mut a = [0u8; 8];
    a.copy_from_slice(&bytes[..8]);
    u64::from_le_bytes(a)
}

/// One journaled row: global record id, raw field texts, weight.
pub type Row = (u64, Vec<String>, f64);

/// One journaled ingest: the rows exactly as the request carried them,
/// each tagged with the record id the engine assigned.
pub type Entry = Vec<Row>;

/// What [`Journal::open`] recovered from an existing file.
#[derive(Debug)]
pub struct Recovery {
    /// Fully appended entries, in append order — replay these.
    pub entries: Vec<Entry>,
    /// Bytes of torn/corrupt tail dropped (0 on a clean file).
    pub dropped_bytes: u64,
}

#[derive(Debug)]
struct Inner {
    file: File,
    /// End of the last fully appended entry.
    len: u64,
}

/// An append-only ingest journal segment. Appends are serialized by an
/// internal mutex, so the engine can share one journal across
/// connections.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    inner: Mutex<Inner>,
    /// Fault injection: when set, every append fails before touching the
    /// file. Lets tests exercise the disk-full path (structured
    /// `journal` errors, engine state unchanged) without a real full
    /// disk.
    fail_appends: AtomicBool,
}

fn put_str(buf: &mut Vec<u8>, s: &str) -> Result<(), String> {
    let len = u32::try_from(s.len()).map_err(|_| "journal string too long".to_string())?;
    buf.extend_from_slice(&len.to_le_bytes());
    buf.extend_from_slice(s.as_bytes());
    Ok(())
}

/// Serialize one entry's payload. Also the payload format of a
/// replication wire frame (`replication` module), so a replica can
/// journal what it receives byte-for-byte.
pub(crate) fn encode_entry(rows: &[Row]) -> Result<Vec<u8>, String> {
    let mut buf = Vec::with_capacity(72 * rows.len().max(1));
    let n = u32::try_from(rows.len()).map_err(|_| "journal entry too large".to_string())?;
    buf.extend_from_slice(&n.to_le_bytes());
    for (rid, fields, weight) in rows {
        buf.extend_from_slice(&rid.to_le_bytes());
        let arity = u32::try_from(fields.len()).map_err(|_| "journal row too wide".to_string())?;
        buf.extend_from_slice(&arity.to_le_bytes());
        for f in fields {
            put_str(&mut buf, f)?;
        }
        buf.extend_from_slice(&weight.to_bits().to_le_bytes());
    }
    Ok(buf)
}

struct Cur<'a> {
    b: &'a [u8],
    pos: usize,
}
impl<'a> Cur<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.b.len())
            .ok_or("journal entry payload truncated")?;
        let s = &self.b[self.pos..end];
        self.pos = end;
        Ok(s)
    }
    fn u32(&mut self) -> Result<u32, String> {
        Ok(le_u32(self.take(4)?))
    }
    fn u64(&mut self) -> Result<u64, String> {
        Ok(le_u64(self.take(8)?))
    }
    fn str(&mut self) -> Result<String, String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| "journal string is not UTF-8".to_string())
    }
}

/// Parse one entry's payload (the inverse of [`encode_entry`]).
pub(crate) fn decode_entry(payload: &[u8]) -> Result<Entry, String> {
    let mut cur = Cur { b: payload, pos: 0 };
    let n_rows = cur.u32()? as usize;
    let mut rows = Vec::with_capacity(n_rows.min(1 << 20));
    for _ in 0..n_rows {
        let rid = cur.u64()?;
        let arity = cur.u32()? as usize;
        let mut fields = Vec::with_capacity(arity.min(1024));
        for _ in 0..arity {
            fields.push(cur.str()?);
        }
        rows.push((rid, fields, f64::from_bits(cur.u64()?)));
    }
    if cur.pos != payload.len() {
        return Err("journal entry has trailing bytes".into());
    }
    Ok(rows)
}

/// Parse one version-1 payload: rows without rids (upgrade path).
fn decode_entry_v1(payload: &[u8]) -> Result<Vec<(Vec<String>, f64)>, String> {
    let mut cur = Cur { b: payload, pos: 0 };
    let n_rows = cur.u32()? as usize;
    let mut rows = Vec::with_capacity(n_rows.min(1 << 20));
    for _ in 0..n_rows {
        let arity = cur.u32()? as usize;
        let mut fields = Vec::with_capacity(arity.min(1024));
        for _ in 0..arity {
            fields.push(cur.str()?);
        }
        rows.push((fields, f64::from_bits(cur.u64()?)));
    }
    if cur.pos != payload.len() {
        return Err("journal entry has trailing bytes".into());
    }
    Ok(rows)
}

/// Scan framed entries out of `bytes` (after the 8-byte header), decoding
/// each payload with `decode`. Stops at the first torn or corrupt entry,
/// returning the decoded entries and the end offset of the last good one.
fn scan_entries<T>(bytes: &[u8], decode: impl Fn(&[u8]) -> Result<T, String>) -> (Vec<T>, u64) {
    let mut entries = Vec::new();
    let mut good = 8u64;
    let mut pos = 8usize;
    loop {
        // A torn or corrupt entry ends replay; everything before it is
        // intact (checksummed), everything after was never acknowledged.
        if pos + 4 > bytes.len() {
            break;
        }
        let len = le_u32(&bytes[pos..pos + 4]) as usize;
        let Some(end) = pos.checked_add(4).and_then(|p| p.checked_add(len)) else {
            break;
        };
        if end + 8 > bytes.len() {
            break;
        }
        let payload = &bytes[pos + 4..end];
        let stored = le_u64(&bytes[end..end + 8]);
        if fnv1a(payload) != stored {
            break;
        }
        match decode(payload) {
            Ok(rows) => entries.push(rows),
            Err(_) => break,
        }
        pos = end + 8;
        good = pos as u64;
    }
    (entries, good)
}

impl Journal {
    /// Open (or create) the journal at `path`, recover every fully
    /// appended entry, and truncate any torn tail so new appends start
    /// on a clean boundary. Version-1 files are upgraded to version 2 in
    /// place (rids synthesized in append order) before the handle is
    /// returned.
    pub fn open(path: &Path) -> Result<(Journal, Recovery), String> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)
            .map_err(|e| format!("cannot open journal {}: {e}", path.display()))?;
        let size = file
            .metadata()
            .map_err(|e| format!("cannot stat journal: {e}"))?
            .len();
        let mut entries = Vec::new();
        let mut good = 8u64; // after magic + version
        let mut size = size;
        if size == 0 {
            // Fresh journal: write the header.
            file.write_all(MAGIC)
                .map_err(|e| format!("journal write: {e}"))?;
            file.write_all(&VERSION.to_le_bytes())
                .map_err(|e| format!("journal write: {e}"))?;
            file.sync_data().map_err(|e| format!("journal sync: {e}"))?;
        } else {
            let mut bytes = Vec::with_capacity(size as usize);
            file.read_to_end(&mut bytes)
                .map_err(|e| format!("cannot read journal: {e}"))?;
            if bytes.len() < 8 || &bytes[..4] != MAGIC {
                return Err(format!(
                    "{} is not a topk journal (bad magic)",
                    path.display()
                ));
            }
            let version = le_u32(&bytes[4..8]);
            match version {
                VERSION => {
                    let (parsed, g) = scan_entries(&bytes, decode_entry);
                    entries = parsed;
                    good = g;
                }
                1 => {
                    // Upgrade in place: parse the intact v1 prefix,
                    // synthesize sequential rids, and atomically rewrite
                    // the file as v2 so future appends share the format.
                    let (v1, v1_good) = scan_entries(&bytes, decode_entry_v1);
                    let mut rid = 0u64;
                    for old in v1 {
                        let entry: Entry = old
                            .into_iter()
                            .map(|(fields, w)| {
                                let r = rid;
                                rid += 1;
                                (r, fields, w)
                            })
                            .collect();
                        entries.push(entry);
                    }
                    let mut out = Vec::new();
                    out.extend_from_slice(MAGIC);
                    out.extend_from_slice(&VERSION.to_le_bytes());
                    for e in &entries {
                        let payload = encode_entry(e)?;
                        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
                        out.extend_from_slice(&payload);
                        out.extend_from_slice(&fnv1a(&payload).to_le_bytes());
                    }
                    let tmp = path.with_extension("upgrade.tmp");
                    {
                        let mut tf =
                            File::create(&tmp).map_err(|e| format!("journal upgrade: {e}"))?;
                        tf.write_all(&out)
                            .map_err(|e| format!("journal upgrade: {e}"))?;
                        tf.sync_data()
                            .map_err(|e| format!("journal upgrade sync: {e}"))?;
                    }
                    std::fs::rename(&tmp, path)
                        .map_err(|e| format!("journal upgrade rename: {e}"))?;
                    topk_obs::info!(
                        "journal {}: upgraded v1 -> v{VERSION} ({} entries)",
                        path.display(),
                        entries.len()
                    );
                    file = OpenOptions::new()
                        .read(true)
                        .write(true)
                        .open(path)
                        .map_err(|e| format!("cannot reopen journal: {e}"))?;
                    // Torn-tail accounting stays relative to the v1 file.
                    size = bytes.len() as u64 - v1_good + out.len() as u64;
                    good = out.len() as u64;
                }
                v => {
                    return Err(format!(
                        "journal version {v} not supported (this build reads version {VERSION})"
                    ));
                }
            }
        }
        let dropped = size.saturating_sub(good).min(size);
        if dropped > 0 {
            topk_obs::warn!(
                "journal {}: dropped {dropped} torn tail bytes after {} intact entries",
                path.display(),
                entries.len()
            );
        }
        file.set_len(good.max(8))
            .map_err(|e| format!("cannot truncate journal tail: {e}"))?;
        file.seek(SeekFrom::End(0))
            .map_err(|e| format!("journal seek: {e}"))?;
        Ok((
            Journal {
                path: path.to_path_buf(),
                inner: Mutex::new(Inner {
                    file,
                    len: good.max(8),
                }),
                fail_appends: AtomicBool::new(false),
            },
            Recovery {
                entries,
                dropped_bytes: dropped,
            },
        ))
    }

    /// Append one ingest entry and fsync it. Returns only after the
    /// entry is durable; the caller applies the ingest afterwards.
    pub fn append(&self, rows: &[Row]) -> Result<(), String> {
        if self.fail_appends.load(Ordering::Relaxed) {
            return Err("journal append: injected failure".to_string());
        }
        let payload = encode_entry(rows)?;
        let len =
            u32::try_from(payload.len()).map_err(|_| "journal entry too large".to_string())?;
        let mut frame = Vec::with_capacity(payload.len() + 12);
        frame.extend_from_slice(&len.to_le_bytes());
        frame.extend_from_slice(&payload);
        frame.extend_from_slice(&fnv1a(&payload).to_le_bytes());
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        inner
            .file
            .write_all(&frame)
            .map_err(|e| format!("journal append: {e}"))?;
        inner
            .file
            .sync_data()
            .map_err(|e| format!("journal sync: {e}"))?;
        inner.len += frame.len() as u64;
        Ok(())
    }

    /// Roll the file back to a length previously observed via
    /// [`len_bytes`](Self::len_bytes) — undoes appends made since. Used
    /// by [`JournalSet::append_sharded`] to keep a multi-segment append
    /// all-or-nothing when one segment fails mid-batch.
    pub(crate) fn rewind_to(&self, len: u64) -> Result<(), String> {
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        inner
            .file
            .set_len(len)
            .map_err(|e| format!("journal rewind: {e}"))?;
        inner
            .file
            .seek(SeekFrom::End(0))
            .map_err(|e| format!("journal seek: {e}"))?;
        inner
            .file
            .sync_data()
            .map_err(|e| format!("journal sync: {e}"))?;
        inner.len = len;
        Ok(())
    }

    /// Drop every entry (the snapshot that was just written carries the
    /// state). The file shrinks back to its 8-byte header.
    pub fn truncate(&self) -> Result<(), String> {
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        inner
            .file
            .set_len(8)
            .map_err(|e| format!("journal truncate: {e}"))?;
        inner
            .file
            .seek(SeekFrom::End(0))
            .map_err(|e| format!("journal seek: {e}"))?;
        inner
            .file
            .sync_data()
            .map_err(|e| format!("journal sync: {e}"))?;
        inner.len = 8;
        Ok(())
    }

    /// Current journal size in bytes (header included).
    pub fn len_bytes(&self) -> u64 {
        self.inner.lock().unwrap_or_else(|p| p.into_inner()).len
    }

    /// The journal's path on disk.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Fault injection: make every future append fail (`true`) or
    /// restore normal operation (`false`). See [`Journal::fail_appends`].
    pub fn set_fail_appends(&self, fail: bool) {
        self.fail_appends.store(fail, Ordering::Relaxed);
    }
}

/// Segment path for shard `i` of a set based at `base`: `base` itself
/// for shard 0, `base` with `.s{i}` appended otherwise.
pub fn segment_path(base: &Path, i: usize) -> PathBuf {
    if i == 0 {
        base.to_path_buf()
    } else {
        let mut os = base.as_os_str().to_os_string();
        os.push(format!(".s{i}"));
        PathBuf::from(os)
    }
}

/// What [`JournalSet::open`] recovered across every segment (orphans
/// included).
#[derive(Debug)]
pub struct SetRecovery {
    /// Every recovered row, sorted by record id — the global ingest
    /// order. Replay these in order.
    pub rows: Vec<Row>,
    /// Total intact entries (acknowledged ingest batches) across
    /// segments.
    pub entries: usize,
    /// Total torn-tail bytes dropped across segments.
    pub dropped_bytes: u64,
    /// Largest record id seen on disk, if any — the engine resumes its
    /// rid counter above this so future appends sort after everything
    /// already journaled.
    pub max_rid: Option<u64>,
}

/// One journal segment per engine shard, plus any *orphan* segments left
/// behind by a previous run with more shards. Rows are tagged with
/// global record ids, so recovery merges the segments back into the
/// exact ingest order no matter how the rows were fanned out.
#[derive(Debug)]
pub struct JournalSet {
    segments: Vec<Journal>,
    /// Segments `base.sN` with `N >= segments.len()` found on disk:
    /// recovered like any other, never appended to, deleted on
    /// [`truncate_all`](Self::truncate_all) once a snapshot covers them.
    /// Mutexed so truncation works through a shared reference (the
    /// engine holds the set immutably).
    orphans: Mutex<Vec<Journal>>,
}

impl JournalSet {
    /// Open (or create) `shards` segment files based at `base`, recover
    /// their contents merged by record id, and pick up any orphan
    /// segments from a previous higher shard count.
    pub fn open(base: &Path, shards: usize) -> Result<(JournalSet, SetRecovery), String> {
        assert!(shards >= 1, "a journal set needs at least one segment");
        let mut segments = Vec::with_capacity(shards);
        let mut rows: Vec<Row> = Vec::new();
        let mut entries = 0usize;
        let mut dropped = 0u64;
        for i in 0..shards {
            let (j, rec) = Journal::open(&segment_path(base, i))?;
            entries += rec.entries.len();
            dropped += rec.dropped_bytes;
            rows.extend(rec.entries.into_iter().flatten());
            segments.push(j);
        }
        let mut orphans = Vec::new();
        for path in find_orphans(base, shards)? {
            let (j, rec) = Journal::open(&path)?;
            topk_obs::warn!(
                "journal segment {} orphaned by a shard-count change: \
                 recovering {} entries (deleted after the next snapshot)",
                path.display(),
                rec.entries.len()
            );
            entries += rec.entries.len();
            dropped += rec.dropped_bytes;
            rows.extend(rec.entries.into_iter().flatten());
            orphans.push(j);
        }
        rows.sort_by_key(|&(rid, _, _)| rid);
        let max_rid = rows.last().map(|&(rid, _, _)| rid);
        Ok((
            JournalSet {
                segments,
                orphans: Mutex::new(orphans),
            },
            SetRecovery {
                rows,
                entries,
                dropped_bytes: dropped,
                max_rid,
            },
        ))
    }

    /// Number of live (appendable) segments.
    pub fn n_segments(&self) -> usize {
        self.segments.len()
    }

    /// The segment journal for shard `i`.
    pub fn segment(&self, i: usize) -> &Journal {
        &self.segments[i]
    }

    /// Append a batch fanned out across segments, all-or-nothing:
    /// `per_segment[i]` holds shard `i`'s rows (empty slices are
    /// skipped). If any segment append fails, segments that already
    /// appended are rewound and the error is returned — the caller must
    /// then apply nothing. The caller is responsible for excluding
    /// concurrent appends to the touched segments (the engine holds the
    /// shard locks).
    pub fn append_sharded(&self, per_segment: &[Vec<Row>]) -> Result<(), String> {
        assert_eq!(per_segment.len(), self.segments.len());
        let mut done: Vec<(usize, u64)> = Vec::new();
        for (i, rows) in per_segment.iter().enumerate() {
            if rows.is_empty() {
                continue;
            }
            let before = self.segments[i].len_bytes();
            if let Err(e) = self.segments[i].append(rows) {
                for &(j, len) in &done {
                    // Rewind best-effort: the batch was never
                    // acknowledged, so a leftover prefix would only be
                    // re-dropped as an unacked suffix on the next open.
                    let _ = self.segments[j].rewind_to(len);
                }
                let _ = self.segments[i].rewind_to(before);
                return Err(e);
            }
            done.push((i, before));
        }
        Ok(())
    }

    /// Truncate every live segment and delete every orphan segment — the
    /// snapshot that was just written carries all their state.
    pub fn truncate_all(&self) -> Result<(), String> {
        for j in &self.segments {
            j.truncate()?;
        }
        let drained: Vec<Journal> = {
            let mut orphans = self.orphans.lock().unwrap_or_else(|p| p.into_inner());
            orphans.drain(..).collect()
        };
        for j in drained {
            let path = j.path().to_path_buf();
            drop(j);
            std::fs::remove_file(&path)
                .map_err(|e| format!("cannot remove orphan segment {}: {e}", path.display()))?;
        }
        Ok(())
    }

    /// Total bytes across live segments (headers included).
    pub fn len_bytes(&self) -> u64 {
        self.segments.iter().map(|j| j.len_bytes()).sum()
    }

    /// Fault injection across every live segment — see
    /// [`Journal::set_fail_appends`].
    pub fn set_fail_appends(&self, fail: bool) {
        for j in &self.segments {
            j.set_fail_appends(fail);
        }
    }
}

/// Find orphan segment files `base.sN` with `N >= shards`.
fn find_orphans(base: &Path, shards: usize) -> Result<Vec<PathBuf>, String> {
    let Some(dir) = base.parent() else {
        return Ok(Vec::new());
    };
    let dir = if dir.as_os_str().is_empty() {
        Path::new(".")
    } else {
        dir
    };
    let Some(stem) = base.file_name().and_then(|s| s.to_str()) else {
        return Ok(Vec::new());
    };
    let mut found: Vec<(usize, PathBuf)> = Vec::new();
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => return Ok(Vec::new()), // no directory -> no orphans
    };
    for ent in entries.flatten() {
        let name = ent.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(suffix) = name.strip_prefix(stem).and_then(|r| r.strip_prefix(".s")) else {
            continue;
        };
        if let Ok(n) = suffix.parse::<usize>() {
            if n >= shards {
                found.push((n, ent.path()));
            }
        }
    }
    found.sort_by_key(|&(n, _)| n);
    Ok(found.into_iter().map(|(_, p)| p).collect())
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("topk_journal_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        let _ = std::fs::remove_file(&path);
        path
    }

    fn rows(tag: &str, base_rid: u64, n: usize) -> Entry {
        (0..n)
            .map(|i| {
                (
                    base_rid + i as u64,
                    vec![format!("{tag} {i}")],
                    1.0 + i as f64,
                )
            })
            .collect()
    }

    #[test]
    fn append_reopen_replays_in_order() {
        let path = tmp("rt.journal");
        let (j, rec) = Journal::open(&path).unwrap();
        assert!(rec.entries.is_empty());
        j.append(&rows("a", 0, 3)).unwrap();
        j.append(&rows("b", 3, 1)).unwrap();
        drop(j);
        let (j, rec) = Journal::open(&path).unwrap();
        assert_eq!(rec.dropped_bytes, 0);
        assert_eq!(rec.entries.len(), 2);
        assert_eq!(rec.entries[0], rows("a", 0, 3));
        assert_eq!(rec.entries[1], rows("b", 3, 1));
        assert_eq!(rec.entries[1][0].2.to_bits(), 1.0f64.to_bits());
        drop(j);
    }

    #[test]
    fn truncate_empties_the_journal() {
        let path = tmp("trunc.journal");
        let (j, _) = Journal::open(&path).unwrap();
        j.append(&rows("a", 0, 2)).unwrap();
        j.truncate().unwrap();
        assert_eq!(j.len_bytes(), 8);
        j.append(&rows("c", 2, 1)).unwrap();
        drop(j);
        let (_, rec) = Journal::open(&path).unwrap();
        assert_eq!(rec.entries.len(), 1);
        assert_eq!(rec.entries[0], rows("c", 2, 1));
    }

    /// kill -9 leaves a byte-prefix of the file: cutting the journal at
    /// EVERY possible byte boundary must recover exactly the entries
    /// whose final checksum byte made it to disk — never garbage, never
    /// an error.
    #[test]
    fn every_truncation_point_recovers_a_clean_prefix() {
        let path = tmp("tear.journal");
        let (j, _) = Journal::open(&path).unwrap();
        j.append(&rows("a", 0, 2)).unwrap();
        j.append(&rows("b", 2, 2)).unwrap();
        drop(j);
        let full = std::fs::read(&path).unwrap();
        let entry_ends: Vec<usize> = {
            // Reconstruct the two entry end offsets from the format.
            let len1 = u32::from_le_bytes(full[8..12].try_into().unwrap()) as usize;
            let end1 = 8 + 4 + len1 + 8;
            let len2 = u32::from_le_bytes(full[end1..end1 + 4].try_into().unwrap()) as usize;
            vec![end1, end1 + 4 + len2 + 8]
        };
        for cut in 8..=full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let (_, rec) = Journal::open(&path).unwrap();
            let expected = entry_ends.iter().filter(|&&e| e <= cut).count();
            assert_eq!(
                rec.entries.len(),
                expected,
                "cut at byte {cut}: wrong entry count"
            );
            // After recovery the file is clean: appends work again.
            let (j, _) = Journal::open(&path).unwrap();
            j.append(&rows("post", 4, 1)).unwrap();
            drop(j);
            let (_, rec) = Journal::open(&path).unwrap();
            assert_eq!(rec.entries.len(), expected + 1, "cut at byte {cut}");
        }
    }

    #[test]
    fn corrupt_middle_entry_stops_replay_there() {
        let path = tmp("flip.journal");
        let (j, _) = Journal::open(&path).unwrap();
        j.append(&rows("a", 0, 2)).unwrap();
        j.append(&rows("b", 2, 2)).unwrap();
        drop(j);
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a byte inside the first entry's payload.
        bytes[14] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let (_, rec) = Journal::open(&path).unwrap();
        assert_eq!(rec.entries.len(), 0, "corrupt first entry drops the rest");
        assert!(rec.dropped_bytes > 0);
    }

    #[test]
    fn rejects_foreign_files_and_future_versions() {
        let path = tmp("bad.journal");
        std::fs::write(&path, b"definitely not a journal").unwrap();
        assert!(Journal::open(&path).unwrap_err().contains("magic"));
        let mut header = Vec::new();
        header.extend_from_slice(MAGIC);
        header.extend_from_slice(&99u32.to_le_bytes());
        std::fs::write(&path, &header).unwrap();
        assert!(Journal::open(&path).unwrap_err().contains("version 99"));
    }

    #[test]
    fn upgrades_v1_files_in_place() {
        let path = tmp("v1.journal");
        // Hand-build a v1 file: header + one 2-row entry (no rids).
        let mut payload = Vec::new();
        payload.extend_from_slice(&2u32.to_le_bytes());
        for (text, w) in [("alpha one", 1.5f64), ("beta two", 2.5f64)] {
            payload.extend_from_slice(&1u32.to_le_bytes()); // arity
            payload.extend_from_slice(&(text.len() as u32).to_le_bytes());
            payload.extend_from_slice(text.as_bytes());
            payload.extend_from_slice(&w.to_bits().to_le_bytes());
        }
        let mut file = Vec::new();
        file.extend_from_slice(MAGIC);
        file.extend_from_slice(&1u32.to_le_bytes());
        file.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        file.extend_from_slice(&payload);
        file.extend_from_slice(&fnv1a(&payload).to_le_bytes());
        std::fs::write(&path, &file).unwrap();

        let (j, rec) = Journal::open(&path).unwrap();
        assert_eq!(rec.entries.len(), 1);
        assert_eq!(
            rec.entries[0],
            vec![
                (0, vec!["alpha one".to_string()], 1.5),
                (1, vec!["beta two".to_string()], 2.5),
            ]
        );
        // The file is now v2 and appendable.
        j.append(&rows("more", 2, 1)).unwrap();
        drop(j);
        let (_, rec) = Journal::open(&path).unwrap();
        assert_eq!(rec.entries.len(), 2);
        assert_eq!(rec.entries[1], rows("more", 2, 1));
    }

    #[test]
    fn set_fans_out_and_merges_by_rid() {
        let base = tmp("set.journal");
        let _ = std::fs::remove_file(segment_path(&base, 1));
        let (set, rec) = JournalSet::open(&base, 2).unwrap();
        assert!(rec.rows.is_empty());
        assert_eq!(rec.max_rid, None);
        // Interleave rids across the two segments.
        set.append_sharded(&[
            vec![(0, vec!["a".into()], 1.0), (3, vec!["d".into()], 1.0)],
            vec![(1, vec!["b".into()], 1.0), (2, vec!["c".into()], 1.0)],
        ])
        .unwrap();
        drop(set);
        let (_, rec) = JournalSet::open(&base, 2).unwrap();
        assert_eq!(rec.entries, 2);
        assert_eq!(rec.max_rid, Some(3));
        let texts: Vec<&str> = rec.rows.iter().map(|(_, f, _)| f[0].as_str()).collect();
        assert_eq!(
            texts,
            vec!["a", "b", "c", "d"],
            "merged back into rid order"
        );
    }

    #[test]
    fn set_recovers_orphan_segments_and_deletes_on_truncate() {
        let base = tmp("orphan.journal");
        for i in 1..4 {
            let _ = std::fs::remove_file(segment_path(&base, i));
        }
        // Write with 4 shards...
        let (set, _) = JournalSet::open(&base, 4).unwrap();
        set.append_sharded(&[
            vec![(0, vec!["s0".into()], 1.0)],
            vec![(1, vec!["s1".into()], 1.0)],
            vec![(2, vec!["s2".into()], 1.0)],
            vec![(3, vec!["s3".into()], 1.0)],
        ])
        .unwrap();
        drop(set);
        // ...reopen with 2: segments .s2/.s3 are orphans, still replayed.
        let (set, rec) = JournalSet::open(&base, 2).unwrap();
        assert_eq!(rec.rows.len(), 4);
        assert_eq!(rec.max_rid, Some(3));
        assert!(segment_path(&base, 3).exists(), "orphans survive open");
        set.truncate_all().unwrap();
        assert!(!segment_path(&base, 2).exists(), "orphans deleted");
        assert!(!segment_path(&base, 3).exists());
        drop(set);
        let (_, rec) = JournalSet::open(&base, 2).unwrap();
        assert!(rec.rows.is_empty(), "truncation emptied the live segments");
    }

    #[test]
    fn rewind_undoes_appends_durably() {
        // `append_sharded` keeps multi-segment appends all-or-nothing by
        // rewinding segments that already appended when a later one
        // fails; this exercises the rewind primitive itself.
        let path = tmp("rewind.journal");
        let (j, _) = Journal::open(&path).unwrap();
        j.append(&rows("keep", 0, 1)).unwrap();
        let mark = j.len_bytes();
        j.append(&rows("gone", 1, 2)).unwrap();
        assert!(j.len_bytes() > mark);
        j.rewind_to(mark).unwrap();
        assert_eq!(j.len_bytes(), mark);
        // The rewound entry is gone after reopen; appends still work.
        j.append(&rows("next", 3, 1)).unwrap();
        drop(j);
        let (_, rec) = Journal::open(&path).unwrap();
        assert_eq!(rec.entries.len(), 2);
        assert_eq!(rec.entries[0], rows("keep", 0, 1));
        assert_eq!(rec.entries[1], rows("next", 3, 1));
    }
}
