//! Crash-safe write-ahead journal for ingests.
//!
//! Snapshots alone lose every ingest since the last explicit `snapshot`
//! command when the process dies. The journal closes that window: each
//! `ingest` request is appended here — length-prefixed and checksummed —
//! *before* it is applied to the engine, so a `kill -9` at any byte
//! boundary recovers to exactly the state produced by re-running the
//! surviving (fully appended) ingests. A successful snapshot truncates
//! the journal, because the snapshot now carries everything the journal
//! was protecting.
//!
//! # Format (version 1, little-endian)
//!
//! ```text
//! magic   b"TKJL"
//! version u32                 (readers reject versions they don't know)
//! entries, each:
//!   len      u32              (payload byte count)
//!   payload  len bytes:
//!     rows   u32 count, then per row:
//!            u32 field count, fields as strings (u32 byte-len + UTF-8),
//!            f64 weight (bit pattern)
//!   checksum u64              (FNV-1a over the payload bytes)
//! ```
//!
//! A crash mid-append leaves a torn tail: a short length/payload/checksum
//! or a checksum mismatch. [`Journal::open`] stops replay at the first
//! torn or corrupt entry, truncates the file back to the last good byte,
//! and reports how much it dropped — the dropped suffix is by
//! construction an ingest that was never acknowledged.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

const MAGIC: &[u8; 4] = b"TKJL";
/// Current journal format version.
pub const VERSION: u32 = 1;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &b in bytes {
        hash = (hash ^ b as u64).wrapping_mul(FNV_PRIME);
    }
    hash
}

/// One journaled ingest: the raw rows exactly as the request carried
/// them (field texts + weight).
pub type Entry = Vec<(Vec<String>, f64)>;

/// What [`Journal::open`] recovered from an existing file.
#[derive(Debug)]
pub struct Recovery {
    /// Fully appended entries, in append order — replay these.
    pub entries: Vec<Entry>,
    /// Bytes of torn/corrupt tail dropped (0 on a clean file).
    pub dropped_bytes: u64,
}

#[derive(Debug)]
struct Inner {
    file: File,
    /// End of the last fully appended entry.
    len: u64,
}

/// An append-only ingest journal. Appends are serialized by an internal
/// mutex, so the engine can share one journal across connections.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    inner: Mutex<Inner>,
}

fn put_str(buf: &mut Vec<u8>, s: &str) -> Result<(), String> {
    let len = u32::try_from(s.len()).map_err(|_| "journal string too long".to_string())?;
    buf.extend_from_slice(&len.to_le_bytes());
    buf.extend_from_slice(s.as_bytes());
    Ok(())
}

/// Serialize one entry's payload.
fn encode_entry(rows: &[(Vec<String>, f64)]) -> Result<Vec<u8>, String> {
    let mut buf = Vec::with_capacity(64 * rows.len().max(1));
    let n = u32::try_from(rows.len()).map_err(|_| "journal entry too large".to_string())?;
    buf.extend_from_slice(&n.to_le_bytes());
    for (fields, weight) in rows {
        let arity =
            u32::try_from(fields.len()).map_err(|_| "journal row too wide".to_string())?;
        buf.extend_from_slice(&arity.to_le_bytes());
        for f in fields {
            put_str(&mut buf, f)?;
        }
        buf.extend_from_slice(&weight.to_bits().to_le_bytes());
    }
    Ok(buf)
}

/// Parse one entry's payload (the inverse of [`encode_entry`]).
fn decode_entry(payload: &[u8]) -> Result<Entry, String> {
    struct Cur<'a> {
        b: &'a [u8],
        pos: usize,
    }
    impl<'a> Cur<'a> {
        fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
            let end = self
                .pos
                .checked_add(n)
                .filter(|&e| e <= self.b.len())
                .ok_or("journal entry payload truncated")?;
            let s = &self.b[self.pos..end];
            self.pos = end;
            Ok(s)
        }
        fn u32(&mut self) -> Result<u32, String> {
            Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
        }
        fn u64(&mut self) -> Result<u64, String> {
            Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
        }
        fn str(&mut self) -> Result<String, String> {
            let len = self.u32()? as usize;
            let bytes = self.take(len)?;
            String::from_utf8(bytes.to_vec())
                .map_err(|_| "journal string is not UTF-8".to_string())
        }
    }
    let mut cur = Cur { b: payload, pos: 0 };
    let n_rows = cur.u32()? as usize;
    let mut rows = Vec::with_capacity(n_rows.min(1 << 20));
    for _ in 0..n_rows {
        let arity = cur.u32()? as usize;
        let mut fields = Vec::with_capacity(arity.min(1024));
        for _ in 0..arity {
            fields.push(cur.str()?);
        }
        rows.push((fields, f64::from_bits(cur.u64()?)));
    }
    if cur.pos != payload.len() {
        return Err("journal entry has trailing bytes".into());
    }
    Ok(rows)
}

impl Journal {
    /// Open (or create) the journal at `path`, recover every fully
    /// appended entry, and truncate any torn tail so new appends start
    /// on a clean boundary.
    pub fn open(path: &Path) -> Result<(Journal, Recovery), String> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)
            .map_err(|e| format!("cannot open journal {}: {e}", path.display()))?;
        let size = file
            .metadata()
            .map_err(|e| format!("cannot stat journal: {e}"))?
            .len();
        let mut entries = Vec::new();
        let mut good = 8u64; // after magic + version
        if size == 0 {
            // Fresh journal: write the header.
            file.write_all(MAGIC).map_err(|e| format!("journal write: {e}"))?;
            file.write_all(&VERSION.to_le_bytes())
                .map_err(|e| format!("journal write: {e}"))?;
            file.sync_data().map_err(|e| format!("journal sync: {e}"))?;
        } else {
            let mut bytes = Vec::with_capacity(size as usize);
            file.read_to_end(&mut bytes)
                .map_err(|e| format!("cannot read journal: {e}"))?;
            if bytes.len() < 8 || &bytes[..4] != MAGIC {
                return Err(format!(
                    "{} is not a topk journal (bad magic)",
                    path.display()
                ));
            }
            let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
            if version != VERSION {
                return Err(format!(
                    "journal version {version} not supported (this build reads version {VERSION})"
                ));
            }
            let mut pos = 8usize;
            loop {
                // A torn or corrupt entry ends replay; everything before
                // it is intact (checksummed), everything after was never
                // acknowledged.
                if pos + 4 > bytes.len() {
                    break;
                }
                let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
                let Some(end) = pos.checked_add(4).and_then(|p| p.checked_add(len)) else {
                    break;
                };
                if end + 8 > bytes.len() {
                    break;
                }
                let payload = &bytes[pos + 4..end];
                let stored = u64::from_le_bytes(bytes[end..end + 8].try_into().unwrap());
                if fnv1a(payload) != stored {
                    break;
                }
                match decode_entry(payload) {
                    Ok(rows) => entries.push(rows),
                    Err(_) => break,
                }
                pos = end + 8;
                good = pos as u64;
            }
        }
        let dropped = size.saturating_sub(good).min(size);
        if dropped > 0 {
            topk_obs::warn!(
                "journal {}: dropped {dropped} torn tail bytes after {} intact entries",
                path.display(),
                entries.len()
            );
        }
        file.set_len(good.max(8))
            .map_err(|e| format!("cannot truncate journal tail: {e}"))?;
        file.seek(SeekFrom::End(0))
            .map_err(|e| format!("journal seek: {e}"))?;
        Ok((
            Journal {
                path: path.to_path_buf(),
                inner: Mutex::new(Inner {
                    file,
                    len: good.max(8),
                }),
            },
            Recovery {
                entries,
                dropped_bytes: dropped,
            },
        ))
    }

    /// Append one ingest entry and fsync it. Returns only after the
    /// entry is durable; the caller applies the ingest afterwards.
    pub fn append(&self, rows: &[(Vec<String>, f64)]) -> Result<(), String> {
        let payload = encode_entry(rows)?;
        let len = u32::try_from(payload.len())
            .map_err(|_| "journal entry too large".to_string())?;
        let mut frame = Vec::with_capacity(payload.len() + 12);
        frame.extend_from_slice(&len.to_le_bytes());
        frame.extend_from_slice(&payload);
        frame.extend_from_slice(&fnv1a(&payload).to_le_bytes());
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        inner
            .file
            .write_all(&frame)
            .map_err(|e| format!("journal append: {e}"))?;
        inner
            .file
            .sync_data()
            .map_err(|e| format!("journal sync: {e}"))?;
        inner.len += frame.len() as u64;
        Ok(())
    }

    /// Drop every entry (the snapshot that was just written carries the
    /// state). The file shrinks back to its 8-byte header.
    pub fn truncate(&self) -> Result<(), String> {
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        inner
            .file
            .set_len(8)
            .map_err(|e| format!("journal truncate: {e}"))?;
        inner
            .file
            .seek(SeekFrom::End(0))
            .map_err(|e| format!("journal seek: {e}"))?;
        inner
            .file
            .sync_data()
            .map_err(|e| format!("journal sync: {e}"))?;
        inner.len = 8;
        Ok(())
    }

    /// Current journal size in bytes (header included).
    pub fn len_bytes(&self) -> u64 {
        self.inner.lock().unwrap_or_else(|p| p.into_inner()).len
    }

    /// The journal's path on disk.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("topk_journal_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        let _ = std::fs::remove_file(&path);
        path
    }

    fn rows(tag: &str, n: usize) -> Entry {
        (0..n)
            .map(|i| (vec![format!("{tag} {i}")], 1.0 + i as f64))
            .collect()
    }

    #[test]
    fn append_reopen_replays_in_order() {
        let path = tmp("rt.journal");
        let (j, rec) = Journal::open(&path).unwrap();
        assert!(rec.entries.is_empty());
        j.append(&rows("a", 3)).unwrap();
        j.append(&rows("b", 1)).unwrap();
        drop(j);
        let (j, rec) = Journal::open(&path).unwrap();
        assert_eq!(rec.dropped_bytes, 0);
        assert_eq!(rec.entries.len(), 2);
        assert_eq!(rec.entries[0], rows("a", 3));
        assert_eq!(rec.entries[1], rows("b", 1));
        assert_eq!(rec.entries[1][0].1.to_bits(), 1.0f64.to_bits());
        drop(j);
    }

    #[test]
    fn truncate_empties_the_journal() {
        let path = tmp("trunc.journal");
        let (j, _) = Journal::open(&path).unwrap();
        j.append(&rows("a", 2)).unwrap();
        j.truncate().unwrap();
        assert_eq!(j.len_bytes(), 8);
        j.append(&rows("c", 1)).unwrap();
        drop(j);
        let (_, rec) = Journal::open(&path).unwrap();
        assert_eq!(rec.entries.len(), 1);
        assert_eq!(rec.entries[0], rows("c", 1));
    }

    /// kill -9 leaves a byte-prefix of the file: cutting the journal at
    /// EVERY possible byte boundary must recover exactly the entries
    /// whose final checksum byte made it to disk — never garbage, never
    /// an error.
    #[test]
    fn every_truncation_point_recovers_a_clean_prefix() {
        let path = tmp("tear.journal");
        let (j, _) = Journal::open(&path).unwrap();
        j.append(&rows("a", 2)).unwrap();
        j.append(&rows("b", 2)).unwrap();
        drop(j);
        let full = std::fs::read(&path).unwrap();
        let entry_ends: Vec<usize> = {
            // Reconstruct the two entry end offsets from the format.
            let len1 =
                u32::from_le_bytes(full[8..12].try_into().unwrap()) as usize;
            let end1 = 8 + 4 + len1 + 8;
            let len2 = u32::from_le_bytes(full[end1..end1 + 4].try_into().unwrap()) as usize;
            vec![end1, end1 + 4 + len2 + 8]
        };
        for cut in 8..=full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let (_, rec) = Journal::open(&path).unwrap();
            let expected = entry_ends.iter().filter(|&&e| e <= cut).count();
            assert_eq!(
                rec.entries.len(),
                expected,
                "cut at byte {cut}: wrong entry count"
            );
            // After recovery the file is clean: appends work again.
            let (j, _) = Journal::open(&path).unwrap();
            j.append(&rows("post", 1)).unwrap();
            drop(j);
            let (_, rec) = Journal::open(&path).unwrap();
            assert_eq!(rec.entries.len(), expected + 1, "cut at byte {cut}");
        }
    }

    #[test]
    fn corrupt_middle_entry_stops_replay_there() {
        let path = tmp("flip.journal");
        let (j, _) = Journal::open(&path).unwrap();
        j.append(&rows("a", 2)).unwrap();
        j.append(&rows("b", 2)).unwrap();
        drop(j);
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a byte inside the first entry's payload.
        bytes[14] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let (_, rec) = Journal::open(&path).unwrap();
        assert_eq!(rec.entries.len(), 0, "corrupt first entry drops the rest");
        assert!(rec.dropped_bytes > 0);
    }

    #[test]
    fn rejects_foreign_files_and_future_versions() {
        let path = tmp("bad.journal");
        std::fs::write(&path, b"definitely not a journal").unwrap();
        assert!(Journal::open(&path).unwrap_err().contains("magic"));
        let mut header = Vec::new();
        header.extend_from_slice(MAGIC);
        header.extend_from_slice(&99u32.to_le_bytes());
        std::fs::write(&path, &header).unwrap();
        assert!(Journal::open(&path).unwrap_err().contains("version 99"));
    }
}
