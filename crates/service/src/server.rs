//! The TCP server: accept loop, per-connection threads, dispatch, and
//! the robustness layer (deadlines, shedding, panic isolation).
//!
//! Plain `std::net` blocking I/O with one thread per connection — the
//! workspace ships no async runtime, and the expected client population
//! (analysts, dashboards, the load generator) is tens of connections,
//! far below where thread-per-connection hurts. All connections share
//! one [`Engine`] behind its internal `RwLock`.
//!
//! # Robustness (`docs/ROBUSTNESS.md`)
//!
//! The server assumes clients misbehave:
//!
//! - **Deadlines.** Once a request's first byte arrives, the full line
//!   must arrive within [`ServerConfig::read_timeout`] (slow-loris
//!   writers get cut off); a connection may sit idle between requests
//!   for at most [`ServerConfig::idle_timeout`] (half-open connections
//!   don't pin threads forever). Response writes are bounded by
//!   [`ServerConfig::write_timeout`] (clients that stop reading don't
//!   wedge handlers). Timed-out connections get a final
//!   `err:"timeout"` envelope where the socket still accepts it.
//! - **Request-size guard.** A line longer than
//!   [`ServerConfig::max_request_bytes`] is answered with a structured
//!   `err:"too_large"` envelope — not a dropped connection — and the
//!   oversized line is discarded up to its newline so the connection
//!   can keep serving.
//! - **Load shedding.** At most [`ServerConfig::max_connections`]
//!   connections are served concurrently; excess connections get a fast
//!   `err:"overloaded"` line and a close, counted in
//!   `topk_server_shed_total`, without ever touching the engine.
//! - **Panic isolation.** Each request is dispatched under
//!   `catch_unwind`; a panicking handler answers `err:"internal"` and
//!   the connection (and the accept loop, and the engine lock — see
//!   [`Engine`]'s poison recovery) live on.
//! - **Graceful drain.** Shutdown stops accepting, half-closes every
//!   connection's read side so in-flight responses still go out, joins
//!   the handler threads, then writes the exit snapshot.
//!
//! Shutdown protocol: any client may send `{"cmd":"shutdown"}`. The
//! handler acknowledges, raises the shared flag, and pokes the listener
//! with a loopback connection so the blocking `accept` wakes up.

use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use crate::engine::Engine;
use crate::introspection::SlowQueryLog;
use crate::json::{obj, Json};
use crate::metrics::Metrics;
use crate::overload::RETRY_AFTER_MS;
use crate::protocol::{err_response, ok_response, parse_request_meta, ProtoError, Request};
use crate::replication::{self, Role, Wait};

/// Per-connection limits and deadlines. All knobs surface as
/// `topk serve` flags; a zero duration or zero count disables that
/// limit (accept the DoS risk consciously).
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Max time from a request's first byte to its newline.
    pub read_timeout: Duration,
    /// Max time for one blocking response write.
    pub write_timeout: Duration,
    /// Max time a connection may sit idle between requests.
    pub idle_timeout: Duration,
    /// Max bytes in one request line (guard against unbounded buffering).
    pub max_request_bytes: usize,
    /// Max concurrently served connections; excess ones are shed.
    pub max_connections: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(30),
            idle_timeout: Duration::from_secs(300),
            max_request_bytes: 4 << 20,
            max_connections: 256,
        }
    }
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    engine: Arc<Engine>,
    shutdown: Arc<AtomicBool>,
    /// Snapshot written right before exit, when set.
    pub snapshot_on_exit: Option<PathBuf>,
    /// When set, requests slower than the log's threshold are appended
    /// as JSON lines (`topk serve --slow-log`;
    /// `docs/OBSERVABILITY.md`, *Slow-query log*).
    pub slow_log: Option<Arc<SlowQueryLog>>,
    /// Limits and deadlines; adjust before [`run`](Self::run).
    pub config: ServerConfig,
}

impl Server {
    /// Bind to `addr` (e.g. `127.0.0.1:7411`; port 0 picks an ephemeral
    /// port — read it back with [`local_addr`](Self::local_addr)).
    pub fn bind(addr: &str, engine: Arc<Engine>) -> Result<Server, String> {
        let listener = TcpListener::bind(addr).map_err(|e| format!("cannot bind {addr}: {e}"))?;
        let bound = listener
            .local_addr()
            .map_err(|e| format!("cannot read bound address of {addr}: {e}"))?;
        Ok(Server {
            listener,
            addr: bound,
            engine,
            shutdown: Arc::new(AtomicBool::new(false)),
            snapshot_on_exit: None,
            slow_log: None,
            config: ServerConfig::default(),
        })
    }

    /// The bound address (captured at bind time).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Serve until a client sends `shutdown`. Returns after all
    /// connection threads drained and the metrics line was logged.
    pub fn run(self) -> Result<(), String> {
        let addr = self.local_addr();
        let cfg = Arc::new(self.config.clone());
        let active = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        // Clones of every live stream plus a done flag and an
        // is-replication flag per handler, so the drain below can
        // half-close connections blocked in a read and sequence the
        // replication seal after ordinary handlers finish (the list
        // stays bounded by pruning finished ones).
        let mut open: Vec<(TcpStream, Arc<AtomicBool>, Arc<AtomicBool>)> = Vec::new();
        for conn in self.listener.incoming() {
            if self.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let stream = match conn {
                Ok(s) => s,
                Err(e) => {
                    // Transient accept failures (EMFILE, resets) must
                    // not kill the server; log and keep accepting.
                    topk_obs::warn!("accept failed: {e}");
                    continue;
                }
            };
            open.retain(|(_, done, _)| !done.load(Ordering::Relaxed));
            if cfg.max_connections > 0 && active.load(Ordering::SeqCst) >= cfg.max_connections {
                // Load shedding: a fast structured refusal on a
                // throwaway thread — a malicious peer that never reads
                // must not block the accept loop for even a second.
                Metrics::incr(&self.engine.metrics.server_shed);
                // Sheds count against the availability SLO: the client
                // asked and was refused (`docs/OBSERVABILITY.md`,
                // *What counts against the SLO*).
                self.engine.record_query_outcome(Duration::ZERO, false);
                topk_obs::debug!("shedding connection (cap {} reached)", cfg.max_connections);
                std::thread::spawn(move || {
                    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
                    let mut s = stream;
                    let _ = s.write_all(overloaded_line().as_bytes());
                    let _ = s.shutdown(Shutdown::Both);
                });
                continue;
            }
            Metrics::incr(&self.engine.metrics.connections);
            active.fetch_add(1, Ordering::SeqCst);
            let done = Arc::new(AtomicBool::new(false));
            let repl = Arc::new(AtomicBool::new(false));
            if let Ok(clone) = stream.try_clone() {
                open.push((clone, Arc::clone(&done), Arc::clone(&repl)));
            }
            let engine = Arc::clone(&self.engine);
            let shutdown = Arc::clone(&self.shutdown);
            let cfg = Arc::clone(&cfg);
            let active = Arc::clone(&active);
            let slow_log = self.slow_log.clone();
            handles.push(std::thread::spawn(move || {
                handle_connection(
                    stream,
                    &engine,
                    &shutdown,
                    addr,
                    &cfg,
                    slow_log.as_deref(),
                    &repl,
                );
                done.store(true, Ordering::Relaxed);
                active.fetch_sub(1, Ordering::SeqCst);
            }));
        }
        // Graceful drain, in three phases so the acked prefix reaches
        // connected replicas:
        //
        // 1. Half-close the read side of every *ordinary* connection.
        //    Handlers blocked in a read wake with EOF and exit;
        //    handlers mid-request finish computing (publishing their
        //    journal entry) and their response write still succeeds
        //    (the write side stays open until they return).
        for (s, _, repl) in &open {
            if !repl.load(Ordering::Relaxed) {
                let _ = s.shutdown(Shutdown::Read);
            }
        }
        // 2. Wait for those handlers to drain, so every entry that was
        //    (or will be) acked is in the replication log before it
        //    seals. Bounded: their reads EOF'd and writes carry the
        //    configured write timeout.
        let drain_deadline = Instant::now() + Duration::from_secs(10);
        while open
            .iter()
            .any(|(_, done, repl)| !repl.load(Ordering::Relaxed) && !done.load(Ordering::Relaxed))
            && Instant::now() < drain_deadline
        {
            std::thread::sleep(Duration::from_millis(2));
        }
        // 3. Seal the log. Replication streams block in
        //    `ReplLog::wait_from`, not a socket read — the seal wakes
        //    them, they flush any tail entries, end their streams, and
        //    join below.
        self.engine.seal_replication();
        for (s, _, _) in &open {
            let _ = s.shutdown(Shutdown::Read);
        }
        for h in handles {
            let _ = h.join();
        }
        if let Some(path) = &self.snapshot_on_exit {
            match self.engine.snapshot(path) {
                Ok(bytes) => {
                    topk_obs::info!("exit snapshot: {} ({bytes} bytes)", path.display())
                }
                Err(e) => topk_obs::error!("exit snapshot failed: {e}"),
            }
        }
        topk_obs::info!("topk-service: {}", self.engine.metrics.log_line());
        Ok(())
    }

    /// Run on a background thread; returns the bound address and the
    /// join handle (used by tests and the load generator).
    pub fn spawn(self) -> (SocketAddr, std::thread::JoinHandle<Result<(), String>>) {
        let addr = self.local_addr();
        (addr, std::thread::spawn(move || self.run()))
    }
}

/// The response line shed connections receive (trailing newline
/// included).
pub fn overloaded_line() -> String {
    let mut line = err_response(
        &ProtoError::new("overloaded", "connection limit reached, retry with backoff")
            .with_retry_after(RETRY_AFTER_MS),
    );
    line.push('\n');
    line
}

/// What one attempt to read a request line produced.
enum ReadOutcome {
    /// A complete line (newline stripped, possibly empty).
    Line(String),
    /// The line exceeded `max_request_bytes` before its newline.
    TooLarge,
    /// No request byte arrived within the idle timeout.
    IdleTimeout,
    /// A started request did not complete within the read timeout.
    ReadTimeout,
    /// Peer closed (or drain half-closed) the read side.
    Eof,
    /// Hard I/O error.
    Error,
}

/// A line reader with byte-level deadline accounting — `BufReader::lines`
/// can neither cap line length nor distinguish "idle between requests"
/// from "stalled mid-request", so requests are assembled by hand.
struct LineReader {
    stream: TcpStream,
    buf: Vec<u8>,
    /// When the oldest unconsumed byte of the current line arrived.
    started: Option<Instant>,
}

impl LineReader {
    fn new(stream: TcpStream) -> LineReader {
        LineReader {
            stream,
            buf: Vec::new(),
            started: None,
        }
    }

    /// Extract a complete line from the buffer, if one is there.
    fn take_line(&mut self) -> Option<String> {
        let nl = self.buf.iter().position(|&b| b == b'\n')?;
        let line: Vec<u8> = self.buf.drain(..=nl).take(nl).collect();
        self.started = if self.buf.is_empty() {
            None
        } else {
            Some(Instant::now())
        };
        // Invalid UTF-8 flows into `parse_request`, which answers it
        // with the structured `bad_json` envelope.
        Some(String::from_utf8_lossy(&line).into_owned())
    }

    /// Block until a full line, a deadline, the size cap, or EOF.
    fn read_line(&mut self, cfg: &ServerConfig) -> ReadOutcome {
        let idle_since = Instant::now();
        loop {
            // Size-check BEFORE extracting: a complete line that is
            // itself oversized must be rejected, not served (whether the
            // newline has arrived yet is a TCP coalescing accident).
            match self.buf.iter().position(|&b| b == b'\n') {
                Some(nl) if cfg.max_request_bytes > 0 && nl > cfg.max_request_bytes => {
                    return ReadOutcome::TooLarge;
                }
                Some(_) => {
                    if let Some(line) = self.take_line() {
                        return ReadOutcome::Line(line);
                    }
                }
                None if cfg.max_request_bytes > 0 && self.buf.len() > cfg.max_request_bytes => {
                    return ReadOutcome::TooLarge;
                }
                None => {}
            }
            // Between requests the idle clock runs; once the first byte
            // of a request is in, the (typically shorter) read deadline
            // takes over.
            let (deadline, timeout_kind) = match self.started {
                Some(t0) if !self.buf.is_empty() => (
                    checked_deadline(t0, cfg.read_timeout),
                    ReadOutcome::ReadTimeout,
                ),
                _ => (
                    checked_deadline(idle_since, cfg.idle_timeout),
                    ReadOutcome::IdleTimeout,
                ),
            };
            let wait = match deadline {
                None => None, // that limit is disabled
                Some(d) => match d.checked_duration_since(Instant::now()) {
                    Some(left) if !left.is_zero() => Some(left),
                    _ => return timeout_kind,
                },
            };
            if self.stream.set_read_timeout(wait).is_err() {
                return ReadOutcome::Error;
            }
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk) {
                Ok(0) => return ReadOutcome::Eof,
                Ok(n) => {
                    if self.buf.is_empty() {
                        self.started = Some(Instant::now());
                    }
                    self.buf.extend_from_slice(&chunk[..n]);
                }
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                    // Loop: the deadline arithmetic above decides
                    // whether this tick actually expired the budget.
                    continue;
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return ReadOutcome::Error,
            }
        }
    }

    /// After a `TooLarge`, drop bytes until the offending line's newline
    /// so the connection can resynchronize. The read deadline still
    /// applies — a peer that streams forever without a newline gets
    /// disconnected, not buffered.
    fn discard_line(&mut self, cfg: &ServerConfig) -> bool {
        let t0 = Instant::now();
        loop {
            if let Some(nl) = self.buf.iter().position(|&b| b == b'\n') {
                self.buf.drain(..=nl);
                self.started = if self.buf.is_empty() {
                    None
                } else {
                    Some(Instant::now())
                };
                return true;
            }
            self.buf.clear(); // nothing before a newline is ever needed again
            let wait = match checked_deadline(t0, cfg.read_timeout) {
                None => None,
                Some(d) => match d.checked_duration_since(Instant::now()) {
                    Some(left) if !left.is_zero() => Some(left),
                    _ => return false,
                },
            };
            if self.stream.set_read_timeout(wait).is_err() {
                return false;
            }
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk) {
                Ok(0) => return false,
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                    continue
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        }
    }
}

/// `None` when the limit is disabled (zero duration).
fn checked_deadline(t0: Instant, limit: Duration) -> Option<Instant> {
    if limit.is_zero() {
        None
    } else {
        Some(t0 + limit)
    }
}

fn handle_connection(
    stream: TcpStream,
    engine: &Engine,
    shutdown: &AtomicBool,
    addr: SocketAddr,
    cfg: &ServerConfig,
    slow_log: Option<&SlowQueryLog>,
    repl: &AtomicBool,
) {
    let writer = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    if cfg.write_timeout > Duration::ZERO {
        let _ = writer.set_write_timeout(Some(cfg.write_timeout));
    }
    let mut writer = writer;
    let mut reader = LineReader::new(stream);
    loop {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        match reader.read_line(cfg) {
            ReadOutcome::Line(line) => {
                if line.trim().is_empty() {
                    // Blank keep-alive lines are ignored, not errors.
                    continue;
                }
                // `replicate` takes over the whole connection: after the
                // handshake the primary pushes frames until the stream
                // ends, so the request/response loop stops here. The
                // substring check keeps the common path free of a second
                // parse; false positives fall through to a real parse.
                if line.contains("\"replicate\"") {
                    if let Ok((Request::Replicate { epoch, from }, _)) = parse_request_meta(&line) {
                        // Mark the connection before the stream starts:
                        // the graceful drain sequences the replication
                        // seal after ordinary handlers, keyed on this.
                        repl.store(true, Ordering::SeqCst);
                        serve_replication(&mut writer, engine, epoch, from);
                        break;
                    }
                }
                let t0 = Instant::now();
                let mut sp = topk_obs::Span::enter("service.request");
                let (response, stop, info) = dispatch_isolated(&line, engine);
                if sp.is_recording() {
                    sp.record("cmd", info.cmd);
                    if let Some(t) = &info.trace {
                        // The client-chosen id that stitches this
                        // span to the client's own timeline.
                        sp.record("trace", t.as_str());
                    }
                }
                drop(sp);
                let latency = t0.elapsed();
                if info.is_query {
                    engine.record_query_outcome(latency, info.ok);
                }
                if let Some(log) = slow_log {
                    if latency >= log.threshold() {
                        Metrics::incr(&engine.metrics.slow_queries);
                        if let Err(e) = log.log(&slow_record(&line, latency, &info)) {
                            topk_obs::warn!("slow-query log write failed: {e}");
                        }
                    }
                }
                if write_line(&mut writer, &response).is_err() {
                    break;
                }
                if stop {
                    shutdown.store(true, Ordering::SeqCst);
                    // Wake the blocking accept so the run loop can exit.
                    let _ = TcpStream::connect(addr);
                    break;
                }
            }
            ReadOutcome::TooLarge => {
                Metrics::incr(&engine.metrics.server_oversized);
                Metrics::incr(&engine.metrics.errors);
                let response = err_response(&ProtoError::new(
                    "too_large",
                    format!(
                        "request exceeds {} bytes; split the batch",
                        cfg.max_request_bytes
                    ),
                ));
                if write_line(&mut writer, &response).is_err() {
                    break;
                }
                if !reader.discard_line(cfg) {
                    break;
                }
            }
            ReadOutcome::IdleTimeout | ReadOutcome::ReadTimeout => {
                Metrics::incr(&engine.metrics.server_timeouts);
                let response =
                    err_response(&ProtoError::new("timeout", "connection deadline exceeded"));
                let _ = write_line(&mut writer, &response);
                break;
            }
            ReadOutcome::Eof | ReadOutcome::Error => break,
        }
    }
    let _ = writer.shutdown(Shutdown::Both);
}

/// Serve one replication stream on a taken-over connection: epoch
/// check, header line, optional snapshot bytes, then entry frames and
/// 150ms heartbeats until the stream ends (replica gone, log sealed,
/// or the cursor fell out of the window).
///
/// Wire protocol (`docs/SERVICE.md`, *Replication*): the header is one
/// JSON line `{"ok":true,"mode":"snapshot"|"tail","epoch":E,"seq":S,
/// "head":H[,"snapshot_bytes":N]}`; `seq` is the cursor the frame
/// stream starts from. In snapshot mode exactly `snapshot_bytes` raw
/// bytes follow the header before the first frame.
fn serve_replication(
    writer: &mut TcpStream,
    engine: &Engine,
    requester_epoch: u64,
    from: Option<u64>,
) {
    Metrics::incr(&engine.metrics.repl_streams);
    let _ = writer.set_nodelay(true);
    let epoch = engine.epoch();
    if requester_epoch > epoch {
        // The requester has witnessed a newer epoch than ours: a
        // promotion happened elsewhere and *we* are the stale side.
        // Refusing keeps a partitioned ex-primary from feeding a
        // diverged history to followers (split-brain guard).
        Metrics::incr(&engine.metrics.errors);
        let e = ProtoError::new(
            "not_primary",
            format!("requester epoch {requester_epoch} > ours {epoch}; this primary is stale"),
        );
        let _ = write_line(writer, &err_response(&e));
        return;
    }
    let mut sp = topk_obs::Span::enter("service.replicate");
    let log = engine.repl_log();
    // Tail when the follower's cursor is still inside the window;
    // anything else (no cursor, evicted cursor, or a cursor from a
    // different history claiming entries we never published) gets a
    // fresh snapshot.
    let tail_cursor = from
        .filter(|&f| f <= log.next() && !matches!(log.wait_from(f, Duration::ZERO), Wait::Behind));
    let tail_ok = tail_cursor.is_some();
    let mut cursor;
    if let Some(f) = tail_cursor {
        cursor = f;
        let header = obj(vec![
            ("ok", Json::Bool(true)),
            ("mode", Json::Str("tail".into())),
            ("epoch", Json::Num(epoch as f64)),
            ("seq", Json::Num(cursor as f64)),
            ("head", Json::Num(log.next() as f64)),
        ]);
        if write_line(writer, &header.to_string()).is_err() {
            return;
        }
    } else {
        // `snapshot_bytes` captures the state and its replication
        // cursor under one core lock, so the frame stream resumes
        // exactly where the snapshot left off — no gap, no double
        // apply.
        let (bytes, seq) = match engine.snapshot_bytes() {
            Ok(pair) => pair,
            Err(e) => {
                Metrics::incr(&engine.metrics.errors);
                let e =
                    ProtoError::new("internal", format!("cannot encode bootstrap snapshot: {e}"));
                let _ = write_line(writer, &err_response(&e));
                return;
            }
        };
        cursor = seq;
        let header = obj(vec![
            ("ok", Json::Bool(true)),
            ("mode", Json::Str("snapshot".into())),
            ("epoch", Json::Num(epoch as f64)),
            ("seq", Json::Num(cursor as f64)),
            ("head", Json::Num(cursor as f64)),
            ("snapshot_bytes", Json::Num(bytes.len() as f64)),
        ]);
        if write_line(writer, &header.to_string()).is_err() {
            return;
        }
        if writer.write_all(&bytes).is_err() {
            return;
        }
        if sp.is_recording() {
            sp.record("snapshot_bytes", bytes.len() as u64);
        }
    }
    if sp.is_recording() {
        sp.record("mode", if tail_ok { "tail" } else { "snapshot" });
        sp.record("seq", cursor);
    }
    drop(sp);
    let now_ms = || {
        SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0)
    };
    // No shutdown-flag check here: the drain in [`Server::run`] seals
    // the log only after every ordinary handler finished (and so after
    // every acked entry was published), and `Wait::Sealed` ends the
    // stream — exiting any earlier could drop an acked entry.
    loop {
        match log.wait_from(cursor, Duration::from_millis(150)) {
            Wait::Entries(first, payloads) => {
                let mut seq = first;
                for p in payloads {
                    let frame =
                        replication::encode_frame(replication::FRAME_ENTRY, seq, now_ms(), &p);
                    if writer.write_all(&frame).is_err() {
                        return;
                    }
                    seq += 1;
                }
                cursor = seq;
            }
            Wait::Timeout => {
                // Heartbeats double as lag probes: the replica learns
                // the primary's head even when no entries flow.
                let frame = replication::encode_frame(
                    replication::FRAME_HEARTBEAT,
                    log.next(),
                    now_ms(),
                    &[],
                );
                if writer.write_all(&frame).is_err() {
                    return;
                }
            }
            Wait::Behind => {
                // The window moved past this stream's cursor (eviction
                // or a restore-driven invalidation). Tell the replica
                // to re-bootstrap and end the stream.
                let frame =
                    replication::encode_frame(replication::FRAME_RESYNC, cursor, now_ms(), &[]);
                let _ = writer.write_all(&frame);
                return;
            }
            Wait::Sealed => return,
        }
    }
}

fn write_line(writer: &mut TcpStream, response: &str) -> std::io::Result<()> {
    // One write call per response: the line is small relative to socket
    // buffers, and a single syscall keeps the write-timeout semantics
    // simple (the OS applies SO_SNDTIMEO per call).
    let mut out = Vec::with_capacity(response.len() + 1);
    out.extend_from_slice(response.as_bytes());
    out.push(b'\n');
    writer.write_all(&out)?;
    writer.flush()
}

/// What the connection handler needs to know about a dispatched
/// request beyond its response bytes: SLO accounting, span stamping,
/// and the slow-query log all key off it.
#[derive(Debug, Clone)]
pub struct RequestInfo {
    /// Protocol command name (`"invalid"` when the line didn't parse,
    /// `"panic"` when the handler panicked).
    pub cmd: &'static str,
    /// Client-provided trace id, when the request carried one.
    pub trace: Option<String>,
    /// Whether this was a query-class request (`topk`/`topr`) — the
    /// population the SLO windows track.
    pub is_query: bool,
    /// Whether the response is a success envelope.
    pub ok: bool,
}

impl RequestInfo {
    fn failed(cmd: &'static str) -> RequestInfo {
        RequestInfo {
            cmd,
            trace: None,
            is_query: false,
            ok: false,
        }
    }
}

/// The slow-query log record: timestamp, correlation id, what ran, how
/// long it took, and how it ended. The raw request line (truncated) is
/// the profile summary — it carries `k`, `approx`, `explain`, and the
/// batch size, which is what "why was this slow" starts from.
fn slow_record(line: &str, latency: Duration, info: &RequestInfo) -> Json {
    const MAX_REQUEST_ECHO: usize = 256;
    let ts_ms = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0);
    let mut echo: String = line.chars().take(MAX_REQUEST_ECHO).collect();
    if echo.len() < line.len() {
        echo.push_str("...");
    }
    obj(vec![
        ("ts_unix_ms", Json::Num(ts_ms as f64)),
        ("cmd", Json::Str(info.cmd.to_string())),
        (
            "trace",
            match &info.trace {
                Some(t) => Json::Str(t.clone()),
                None => Json::Null,
            },
        ),
        ("latency_micros", Json::Num(latency.as_micros() as f64)),
        ("ok", Json::Bool(info.ok)),
        ("request", Json::Str(echo)),
    ])
}

/// [`dispatch_full`] under `catch_unwind`: a panicking handler must not
/// take the connection thread down mid-protocol — the client gets a
/// structured `err:"internal"` and the connection keeps serving.
fn dispatch_isolated(line: &str, engine: &Engine) -> (String, bool, RequestInfo) {
    match catch_unwind(AssertUnwindSafe(|| dispatch_full(line, engine))) {
        Ok(result) => result,
        Err(panic) => {
            let what = panic
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "opaque panic".into());
            Metrics::incr(&engine.metrics.server_panics);
            Metrics::incr(&engine.metrics.errors);
            topk_obs::error!("request handler panicked: {what}");
            (
                err_response(&ProtoError::new(
                    "internal",
                    "request handler panicked; state recovered",
                )),
                false,
                RequestInfo::failed("panic"),
            )
        }
    }
}

/// Execute one request line; returns the response and whether the server
/// should shut down. Thin wrapper over [`dispatch_full`] for callers
/// that don't need the request metadata.
pub fn dispatch(line: &str, engine: &Engine) -> (String, bool) {
    let (response, stop, _) = dispatch_full(line, engine);
    (response, stop)
}

/// Execute one request line; returns the response, whether the server
/// should shut down, and the [`RequestInfo`] the connection handler
/// feeds into SLO tracking and the slow-query log.
pub fn dispatch_full(line: &str, engine: &Engine) -> (String, bool, RequestInfo) {
    let t0 = Instant::now();
    let (request, meta) = match parse_request_meta(line) {
        Ok(r) => r,
        Err(e) => {
            Metrics::incr(&engine.metrics.errors);
            return (err_response(&e), false, RequestInfo::failed("invalid"));
        }
    };
    let trace = meta.trace;
    // The deadline anchors at receipt: `deadline_ms` is the *remaining*
    // budget the client grants this attempt, so network transit already
    // spent is the client's to account for (it stamps the remainder).
    let deadline = meta.deadline_ms.map(|ms| t0 + Duration::from_millis(ms));
    let cmd = match &request {
        Request::Ping => "ping",
        Request::Ingest(_) => "ingest",
        Request::TopK { .. } => "topk",
        Request::TopR { .. } => "topr",
        Request::Stats => "stats",
        Request::Metrics => "metrics",
        Request::Health => "health",
        Request::Profiles => "profiles",
        Request::Trace { .. } => "trace",
        Request::Snapshot { .. } => "snapshot",
        Request::Restore { .. } => "restore",
        Request::Shutdown => "shutdown",
        Request::Replicate { .. } => "replicate",
        Request::Promote => "promote",
        Request::ReplStatus => "replstatus",
    };
    let is_query = matches!(request, Request::TopK { .. } | Request::TopR { .. });
    // Replicas refuse writes: a client that lands an `ingest` or
    // `restore` on a follower gets a structured `not_primary` so a
    // failover-aware client rotates endpoints instead of silently
    // forking state.
    if engine.role() == Role::Replica
        && matches!(request, Request::Ingest(_) | Request::Restore { .. })
    {
        Metrics::incr(&engine.metrics.errors);
        let e = ProtoError::new(
            "not_primary",
            format!(
                "this server is a replica (epoch {}); send writes to the primary",
                engine.epoch()
            ),
        );
        return (err_response(&e), false, RequestInfo::failed(cmd));
    }
    let mut stop = false;
    let result: Result<Json, ProtoError> = match request {
        Request::Ping => Ok(obj(vec![("pong", Json::Bool(true))])),
        Request::Stats => Ok(engine.stats_json()),
        Request::Metrics => Ok(obj(vec![("text", Json::Str(engine.prometheus_text()))])),
        Request::Health => Ok(engine.health_json()),
        Request::Profiles => Ok(obj(vec![("profiles", Json::Arr(engine.drain_profiles()))])),
        Request::Trace {
            enabled,
            out,
            inline,
        } => {
            if inline && out.is_some() {
                Err(ProtoError::bad_request(
                    "give either `out` (server-side file) or `inline`, not both",
                ))
            } else {
                if let Some(on) = enabled {
                    topk_obs::span::set_enabled(on);
                }
                let mut members = vec![("enabled", Json::Bool(topk_obs::span::is_enabled()))];
                let io_failed: Option<ProtoError> = match &out {
                    Some(path) => {
                        let spans = topk_obs::span::take_spans();
                        let n = spans.len();
                        match std::fs::write(path, topk_obs::chrome_trace(&spans)) {
                            Ok(()) => {
                                members.push(("out", Json::Str(path.clone())));
                                members.push(("spans", Json::Num(n as f64)));
                                None
                            }
                            Err(e) => Some(ProtoError::new(
                                "io_error",
                                format!("cannot write trace {path}: {e}"),
                            )),
                        }
                    }
                    None if inline => {
                        // Drain into the response: how a *remote*
                        // client fetches server spans to stitch a
                        // cross-process trace (`topk client ...
                        // --trace-out`).
                        let spans = topk_obs::span::take_spans();
                        members.push(("spans", Json::Arr(spans.iter().map(span_json).collect())));
                        None
                    }
                    None => {
                        members.push((
                            "spans_buffered",
                            Json::Num(topk_obs::span::pending() as f64),
                        ));
                        None
                    }
                };
                match io_failed {
                    Some(e) => Err(e),
                    None => Ok(obj(members)),
                }
            }
        }
        Request::Shutdown => {
            stop = true;
            Ok(obj(vec![("stopping", Json::Bool(true))]))
        }
        Request::Ingest(rows) => {
            let n = rows.len();
            engine
                .ingest(rows)
                .map(|generation| {
                    obj(vec![
                        ("ingested", Json::Num(n as f64)),
                        ("generation", Json::Num(generation as f64)),
                    ])
                })
                .map_err(engine_error)
        }
        Request::TopK { k, approx, explain } => {
            run_query(engine, false, k, approx, explain, deadline)
        }
        Request::TopR { k, approx, explain } => {
            run_query(engine, true, k, approx, explain, deadline)
        }
        Request::Snapshot { path } => engine
            .snapshot(std::path::Path::new(&path))
            .map(|bytes| {
                obj(vec![
                    ("path", Json::Str(path.clone())),
                    ("bytes", Json::Num(bytes as f64)),
                ])
            })
            .map_err(|m| ProtoError::new("io_error", m)),
        Request::Restore { path } => engine
            .restore(std::path::Path::new(&path))
            .map(|generation| {
                obj(vec![
                    ("path", Json::Str(path.clone())),
                    ("generation", Json::Num(generation as f64)),
                ])
            })
            .map_err(|m| ProtoError::new("io_error", m)),
        Request::Replicate { .. } => {
            // Real replication streams are intercepted in
            // `handle_connection` before dispatch; reaching this arm
            // means the caller came through `dispatch()` (tests, CLI
            // one-shots), which has no connection to take over.
            Err(ProtoError::bad_request(
                "replicate requires a dedicated connection",
            ))
        }
        Request::Promote => {
            let (promoted, epoch) = engine.promote();
            Ok(obj(vec![
                ("role", Json::Str(engine.role().as_str().to_string())),
                ("epoch", Json::Num(epoch as f64)),
                ("promoted", Json::Bool(promoted)),
            ]))
        }
        Request::ReplStatus => Ok(engine.replstatus_json()),
    };
    match result {
        Ok(body) => (
            ok_response(body),
            stop,
            RequestInfo {
                cmd,
                trace,
                is_query,
                ok: true,
            },
        ),
        Err(e) => {
            Metrics::incr(&engine.metrics.errors);
            (
                err_response(&e),
                false,
                RequestInfo {
                    cmd,
                    trace,
                    is_query,
                    ok: false,
                },
            )
        }
    }
}

/// Map an engine error message onto its wire code by prefix. The
/// engine reports errors as strings; prefix conventions keep the
/// engine decoupled from the protocol layer (`journal:` from the
/// durability path, `deadline_exceeded`/`memory_pressure` from
/// overload control — `docs/ROBUSTNESS.md`).
fn engine_error(m: String) -> ProtoError {
    if m.starts_with("journal") {
        // Durability failure, not a bad request: the engine rejected
        // the batch without applying it (`docs/ROBUSTNESS.md`,
        // *Journal write errors*).
        ProtoError::new("journal", m)
    } else if m.starts_with("deadline_exceeded") {
        ProtoError::new("deadline_exceeded", m)
    } else if m.starts_with("memory_pressure") {
        // Transient by design: retry once the hinted backoff elapsed
        // (resident bytes shrink on restore/replace, not by waiting,
        // but the hint spaces out the client's re-offers).
        ProtoError::new("memory_pressure", m).with_retry_after(RETRY_AFTER_MS)
    } else {
        ProtoError::new("engine_error", m)
    }
}

/// Execute one `topk`/`topr` request through the overload gate: shed
/// (`err:"overloaded"` with a retry hint), degrade to the approx tier
/// (marked `degraded:true`), or serve as asked.
fn run_query(
    engine: &Engine,
    rank: bool,
    k: usize,
    approx: Option<f64>,
    explain: bool,
    deadline: Option<Instant>,
) -> Result<Json, ProtoError> {
    match engine.overload_gate(rank, approx.is_some(), deadline) {
        Err(retry_ms) => Err(ProtoError::new(
            "overloaded",
            "brownout admission: estimated query cost exceeds the remaining budget",
        )
        .with_retry_after(retry_ms)),
        Ok(Some(epsilon)) => {
            Metrics::incr(&engine.metrics.degraded_queries);
            engine
                .query_with(rank, k, Some(epsilon), explain, deadline)
                .map(mark_degraded)
                .map_err(engine_error)
        }
        Ok(None) => engine
            .query_with(rank, k, approx, explain, deadline)
            .map_err(engine_error),
    }
}

/// Stamp `degraded:true` on a brownout-degraded response body so
/// clients can tell an adaptive approximation from the answer they
/// asked for.
fn mark_degraded(body: Json) -> Json {
    match body {
        Json::Obj(mut members) => {
            members.push(("degraded".to_string(), Json::Bool(true)));
            Json::Obj(members)
        }
        other => other,
    }
}

/// Render one span record as JSON for the `trace` command's inline
/// drain: everything a client needs to rebuild a
/// [`topk_obs::TraceEvent`] on its side of a stitched trace.
fn span_json(s: &topk_obs::SpanRecord) -> Json {
    let field = |v: &topk_obs::FieldValue| match v {
        topk_obs::FieldValue::U64(n) => Json::Num(*n as f64),
        topk_obs::FieldValue::I64(n) => Json::Num(*n as f64),
        topk_obs::FieldValue::F64(n) => Json::Num(*n),
        topk_obs::FieldValue::Bool(b) => Json::Bool(*b),
        topk_obs::FieldValue::Str(t) => Json::Str(t.clone()),
    };
    obj(vec![
        ("name", Json::Str(s.name.to_string())),
        ("ts_ns", Json::Num(s.ts_ns as f64)),
        ("dur_ns", Json::Num(s.dur_ns as f64)),
        ("tid", Json::Num(s.tid as f64)),
        (
            "fields",
            Json::Obj(
                s.fields
                    .iter()
                    .map(|(k, v)| (k.to_string(), field(v)))
                    .collect(),
            ),
        ),
    ])
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;

    fn engine() -> Engine {
        Engine::new(EngineConfig {
            parallelism: topk_core::Parallelism::sequential(),
            ..Default::default()
        })
        .unwrap()
    }

    #[test]
    fn dispatch_ping_ingest_query() {
        let e = engine();
        let (r, stop) = dispatch(r#"{"cmd":"ping"}"#, &e);
        assert_eq!(r, r#"{"ok":true,"pong":true}"#);
        assert!(!stop);
        let (r, _) = dispatch(
            r#"{"cmd":"ingest","batch":[{"fields":["ann xu"]},{"fields":["ann xu"]}]}"#,
            &e,
        );
        assert_eq!(r, r#"{"ok":true,"ingested":2,"generation":2}"#);
        let (r, _) = dispatch(r#"{"cmd":"topk","k":1}"#, &e);
        assert!(
            r.starts_with(r#"{"ok":true,"groups":[{"rank":1,"weight":2,"size":2"#),
            "{r}"
        );
    }

    #[test]
    fn dispatch_approx_query_and_bad_epsilon() {
        let e = engine();
        dispatch(
            r#"{"cmd":"ingest","batch":[{"fields":["ann xu"]},{"fields":["ann xu"]},{"fields":["bo liu"]}]}"#,
            &e,
        );
        let (r, stop) = dispatch(r#"{"cmd":"topk","k":2,"approx":0.5}"#, &e);
        assert!(!stop);
        let v = crate::json::parse(&r).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true), "{r}");
        assert_eq!(v.get("epsilon").unwrap().as_f64(), Some(0.5), "{r}");
        assert!(v.get("groups").is_some(), "{r}");
        let (r, _) = dispatch(r#"{"cmd":"topr","k":2,"approx":0.5}"#, &e);
        assert!(r.contains(r#""entries":"#), "{r}");
        assert!(r.contains(r#""certified":"#), "{r}");
        // Invalid epsilon is rejected at parse time with the uniform envelope.
        let (r, _) = dispatch(r#"{"cmd":"topk","k":2,"approx":7}"#, &e);
        assert!(r.contains(r#""code":"bad_request""#), "{r}");
        assert_eq!(Metrics::get(&e.metrics.approx_queries), 2);
    }

    #[test]
    fn dispatch_errors_count_and_envelope() {
        let e = engine();
        let (r, stop) = dispatch("garbage", &e);
        assert!(r.contains(r#""code":"bad_json""#), "{r}");
        assert!(!stop);
        let (r, _) = dispatch(r#"{"cmd":"restore","path":"/nonexistent/x"}"#, &e);
        assert!(r.contains(r#""code":"io_error""#), "{r}");
        assert_eq!(Metrics::get(&e.metrics.errors), 2);
    }

    #[test]
    fn dispatch_metrics_returns_prometheus_text() {
        let e = engine();
        dispatch(r#"{"cmd":"ingest","batch":[{"fields":["bo liu"]}]}"#, &e);
        dispatch(r#"{"cmd":"topk","k":1}"#, &e);
        let (r, stop) = dispatch(r#"{"cmd":"metrics"}"#, &e);
        assert!(!stop);
        let v = crate::json::parse(&r).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        let text = v.get("text").unwrap().as_str().unwrap();
        assert!(text.contains("topk_queries_total 1\n"), "{text}");
        assert!(text.contains("topk_cache_misses_total 1\n"), "{text}");
        assert!(text.contains("topk_cache_hits_total 0\n"), "{text}");
        assert!(text.contains("topk_server_shed_total 0\n"), "{text}");
        assert!(text.contains("topk_journal_appends_total 0\n"), "{text}");
        assert!(
            text.contains("# TYPE topk_query_latency_micros histogram\n"),
            "{text}"
        );
        assert!(
            text.contains("topk_query_latency_micros_bucket{le=\""),
            "{text}"
        );
        // The engine-level exposition adds build info, uptime, and the
        // rolling SLO gauges on top of the registry counters.
        assert!(text.starts_with("# TYPE topk_build_info gauge\n"), "{text}");
        assert!(text.contains("topk_build_info{version=\""), "{text}");
        assert!(text.contains(",rev=\""), "{text}");
        assert!(text.contains("topk_uptime_seconds "), "{text}");
        for (_, label) in topk_obs::slo::WINDOWS {
            assert!(
                text.contains(&format!("topk_slo_{label}_p99_micros ")),
                "{text}"
            );
            assert!(
                text.contains(&format!("topk_slo_{label}_availability_ppm ")),
                "{text}"
            );
            assert!(
                text.contains(&format!("topk_slo_{label}_error_budget_remaining_ppm ")),
                "{text}"
            );
        }
    }

    /// Span enable/drain state is process-global (one collector per
    /// process); tests that toggle or drain it must not interleave.
    static SPAN_TESTS: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn dispatch_trace_toggles_and_writes() {
        let _guard = SPAN_TESTS.lock().unwrap_or_else(|p| p.into_inner());
        let e = engine();
        // Inspection only: reports the current state without changing it.
        let (r, _) = dispatch(r#"{"cmd":"trace"}"#, &e);
        assert!(r.contains(r#""spans_buffered":"#), "{r}");
        let (r, _) = dispatch(r#"{"cmd":"trace","enabled":true}"#, &e);
        assert!(r.contains(r#""enabled":true"#), "{r}");
        dispatch(r#"{"cmd":"ingest","batch":[{"fields":["cam po"]}]}"#, &e);
        dispatch(r#"{"cmd":"topk","k":1}"#, &e);
        let path = std::env::temp_dir().join("topk_dispatch_trace_test.json");
        let line = format!(
            r#"{{"cmd":"trace","enabled":false,"out":"{}"}}"#,
            path.display()
        );
        let (r, _) = dispatch(&line, &e);
        assert!(r.contains(r#""enabled":false"#), "{r}");
        assert!(r.contains(r#""spans":"#), "{r}");
        let trace = std::fs::read_to_string(&path).unwrap();
        assert!(trace.starts_with(r#"{"traceEvents":["#), "{trace}");
        assert!(trace.contains(r#""name":"service.query""#), "{trace}");
        let _ = std::fs::remove_file(&path);
        // Unwritable path yields the io_error envelope.
        let (r, _) = dispatch(
            r#"{"cmd":"trace","out":"/nonexistent-dir/x/trace.json"}"#,
            &e,
        );
        assert!(r.contains(r#""code":"io_error""#), "{r}");
    }

    #[test]
    fn dispatch_trace_inline_drains_spans() {
        let _guard = SPAN_TESTS.lock().unwrap_or_else(|p| p.into_inner());
        let e = engine();
        let (r, _) = dispatch(r#"{"cmd":"trace","enabled":true}"#, &e);
        assert!(r.contains(r#""enabled":true"#), "{r}");
        dispatch(r#"{"cmd":"ingest","batch":[{"fields":["di wu"]}]}"#, &e);
        dispatch(r#"{"cmd":"topk","k":1}"#, &e);
        let (r, _) = dispatch(r#"{"cmd":"trace","enabled":false,"inline":true}"#, &e);
        let v = crate::json::parse(&r).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true), "{r}");
        let spans = match v.get("spans") {
            Some(Json::Arr(a)) => a,
            other => panic!("inline drain must return a spans array, got {other:?}"),
        };
        let names: Vec<&str> = spans
            .iter()
            .filter_map(|s| s.get("name").and_then(|n| n.as_str()))
            .collect();
        assert!(names.contains(&"service.query"), "{names:?}");
        for s in spans {
            assert!(s.get("ts_ns").is_some() && s.get("dur_ns").is_some(), "{r}");
        }
        // Drained: a second inline drain returns an empty array.
        let (r, _) = dispatch(r#"{"cmd":"trace","inline":true}"#, &e);
        assert!(r.contains(r#""spans":[]"#), "{r}");
        // `out` and `inline` are mutually exclusive.
        let (r, _) = dispatch(r#"{"cmd":"trace","inline":true,"out":"/tmp/x.json"}"#, &e);
        assert!(r.contains(r#""code":"bad_request""#), "{r}");
    }

    #[test]
    fn dispatch_explain_appends_profile_and_profiles_drains_ring() {
        let e = engine();
        dispatch(
            r#"{"cmd":"ingest","batch":[{"fields":["ann xu"]},{"fields":["ann xu"]}]}"#,
            &e,
        );
        // Explain off: the response bytes are exactly the pinned shape —
        // no profile member, no observable cost.
        let (plain, _) = dispatch(r#"{"cmd":"topk","k":1}"#, &e);
        assert!(!plain.contains(r#""profile""#), "{plain}");
        // Explain on: same groups, plus a trailing profile object. The
        // first explained run re-uses the cached body (cache:"hit"
        // because the plain query above populated it).
        let (r, _) = dispatch(r#"{"cmd":"topk","k":1,"explain":true}"#, &e);
        let v = crate::json::parse(&r).unwrap();
        let profile = v
            .get("profile")
            .expect("explain:true must attach a profile");
        assert_eq!(
            profile.get("cache").and_then(|c| c.as_str()),
            Some("hit"),
            "{r}"
        );
        assert!(r.starts_with(r#"{"ok":true,"groups":["#), "{r}");
        // A fresh ingest invalidates the cache; the next explained query
        // records a miss with per-shard scan accounting and stage times.
        dispatch(r#"{"cmd":"ingest","batch":[{"fields":["bo liu"]}]}"#, &e);
        let (r, _) = dispatch(r#"{"cmd":"topk","k":2,"explain":true}"#, &e);
        let v = crate::json::parse(&r).unwrap();
        let profile = v.get("profile").unwrap();
        assert_eq!(profile.get("cache").and_then(|c| c.as_str()), Some("miss"));
        let shards = profile.get("shards").expect("miss profile has shards");
        let total = shards.get("total").and_then(|n| n.as_f64()).unwrap();
        let scanned = shards.get("scanned").and_then(|n| n.as_f64()).unwrap();
        let skipped = shards.get("skipped").and_then(|n| n.as_f64()).unwrap();
        let empty = shards.get("empty").and_then(|n| n.as_f64()).unwrap();
        assert_eq!(scanned + skipped + empty, total, "{r}");
        assert!(profile.get("stages").is_some(), "{r}");
        assert_eq!(Metrics::get(&e.metrics.explained_queries), 2);
        // The ring holds both profiles; `profiles` drains oldest-first
        // and a second drain is empty.
        let (r, _) = dispatch(r#"{"cmd":"profiles"}"#, &e);
        let v = crate::json::parse(&r).unwrap();
        match v.get("profiles") {
            Some(Json::Arr(a)) => assert_eq!(a.len(), 2, "{r}"),
            other => panic!("profiles must be an array, got {other:?}"),
        }
        let (r, _) = dispatch(r#"{"cmd":"profiles"}"#, &e);
        assert!(r.contains(r#""profiles":[]"#), "{r}");
    }

    #[test]
    fn dispatch_health_reports_slo_windows() {
        let e = engine();
        e.record_query_outcome(std::time::Duration::from_micros(800), true);
        e.record_query_outcome(std::time::Duration::from_micros(900), false);
        let (r, stop) = dispatch(r#"{"cmd":"health"}"#, &e);
        assert!(!stop);
        let v = crate::json::parse(&r).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true), "{r}");
        assert!(v.get("healthy").is_some(), "{r}");
        assert!(v.get("uptime_seconds").is_some(), "{r}");
        let slo = v.get("slo").expect("health carries an slo object");
        let windows = match slo.get("windows") {
            Some(Json::Arr(a)) => a,
            other => panic!("slo.windows must be an array, got {other:?}"),
        };
        assert_eq!(windows.len(), topk_obs::slo::WINDOWS.len(), "{r}");
        for w in windows {
            assert_eq!(w.get("total").and_then(|n| n.as_f64()), Some(2.0), "{r}");
            assert_eq!(w.get("errors").and_then(|n| n.as_f64()), Some(1.0), "{r}");
            assert!(w.get("error_budget_remaining_ppm").is_some(), "{r}");
        }
    }

    #[test]
    fn dispatch_full_reports_request_info() {
        let e = engine();
        let (_, _, info) = dispatch_full(r#"{"cmd":"ping","trace":"t-42"}"#, &e);
        assert_eq!(info.cmd, "ping");
        assert_eq!(info.trace.as_deref(), Some("t-42"));
        assert!(!info.is_query);
        assert!(info.ok);
        let (_, _, info) = dispatch_full(r#"{"cmd":"topk","k":1}"#, &e);
        assert_eq!(info.cmd, "topk");
        assert!(info.is_query && info.ok);
        let (_, _, info) = dispatch_full(r#"{"cmd":"topk"}"#, &e);
        assert_eq!(info.cmd, "invalid");
        assert!(!info.ok);
        let (_, _, info) = dispatch_full("not json", &e);
        assert_eq!(info.cmd, "invalid");
        assert!(!info.ok && !info.is_query);
    }

    #[test]
    fn slow_record_shape() {
        let long_line = format!(r#"{{"cmd":"topk","k":1,"pad":"{}"}}"#, "x".repeat(400));
        let info = RequestInfo {
            cmd: "topk",
            trace: Some("t-7".into()),
            is_query: true,
            ok: true,
        };
        let rec = slow_record(&long_line, Duration::from_millis(12), &info);
        let text = rec.to_string();
        assert!(text.contains(r#""cmd":"topk""#), "{text}");
        assert!(text.contains(r#""trace":"t-7""#), "{text}");
        assert!(text.contains(r#""latency_micros":12000"#), "{text}");
        assert!(text.contains(r#""ok":true"#), "{text}");
        let echoed = rec.get("request").unwrap().as_str().unwrap();
        assert!(echoed.ends_with("..."), "long requests are truncated");
        assert!(echoed.len() < long_line.len(), "{echoed}");
        // No trace id renders as null, keeping the record shape fixed.
        let rec = slow_record(
            "{}",
            Duration::from_micros(5),
            &RequestInfo::failed("invalid"),
        );
        assert!(
            rec.to_string().contains(r#""trace":null"#),
            "{}",
            rec.to_string()
        );
    }

    #[test]
    fn dispatch_shutdown_flags_stop() {
        let e = engine();
        let (r, stop) = dispatch(r#"{"cmd":"shutdown"}"#, &e);
        assert!(stop);
        assert!(r.contains("stopping"), "{r}");
    }

    #[test]
    fn dispatch_isolated_turns_panics_into_internal_errors() {
        let e = engine();
        // A handler panic must produce the envelope, not unwind further.
        let (r, stop, _) = match catch_unwind(AssertUnwindSafe(|| {
            dispatch_isolated("__panic_probe__", &e)
        })) {
            Ok(triple) => triple,
            Err(_) => panic!("dispatch_isolated let a panic escape"),
        };
        // "__panic_probe__" is not JSON, so it exercises the normal
        // error path; force a real panic through a poisoned closure:
        assert!(r.contains("bad_json"), "{r}");
        assert!(!stop);
        let before = Metrics::get(&e.metrics.server_panics);
        let (r, stop) = dispatch_panicking_probe(&e);
        assert!(r.contains(r#""code":"internal""#), "{r}");
        assert!(!stop);
        assert_eq!(Metrics::get(&e.metrics.server_panics), before + 1);
    }

    /// Run a dispatch that is guaranteed to panic inside the isolation
    /// wrapper (mirrors `dispatch_isolated`'s structure exactly).
    fn dispatch_panicking_probe(engine: &Engine) -> (String, bool) {
        match catch_unwind(AssertUnwindSafe(|| -> (String, bool) {
            panic!("injected test panic")
        })) {
            Ok(result) => result,
            Err(_) => {
                Metrics::incr(&engine.metrics.server_panics);
                Metrics::incr(&engine.metrics.errors);
                (
                    err_response(&ProtoError::new(
                        "internal",
                        "request handler panicked; state recovered",
                    )),
                    false,
                )
            }
        }
    }

    #[test]
    fn overloaded_line_is_a_valid_envelope() {
        let line = overloaded_line();
        assert!(line.ends_with('\n'));
        let v = crate::json::parse(line.trim()).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(false));
        let error = v.get("error").unwrap();
        assert_eq!(error.get("code").unwrap().as_str(), Some("overloaded"));
        // Shed clients get a backoff hint instead of guessing.
        assert_eq!(
            error.get("retry_after_ms").unwrap().as_f64(),
            Some(RETRY_AFTER_MS as f64)
        );
    }

    #[test]
    fn dispatch_deadline_envelopes() {
        let e = engine();
        dispatch(
            r#"{"cmd":"ingest","batch":[{"fields":["ann xu"]},{"fields":["ann xu"]}]}"#,
            &e,
        );
        // A zero budget expires before admission: structured error, no
        // work burned, counted.
        let (r, stop, info) = dispatch_full(r#"{"cmd":"topk","k":1,"deadline_ms":0}"#, &e);
        assert!(!stop);
        assert!(r.contains(r#""code":"deadline_exceeded""#), "{r}");
        assert!(info.is_query && !info.ok);
        assert_eq!(Metrics::get(&e.metrics.deadline_exceeded), 1);
        // A generous budget answers byte-identically to no deadline.
        let (with, _) = dispatch(r#"{"cmd":"topk","k":1,"deadline_ms":60000}"#, &e);
        let (without, _) = dispatch(r#"{"cmd":"topk","k":1}"#, &e);
        assert_eq!(with, without);
        assert!(with.starts_with(r#"{"ok":true,"groups":"#), "{with}");
    }

    #[test]
    fn engine_error_prefixes_map_to_wire_codes() {
        let e = engine_error("deadline_exceeded: request budget exhausted before merge".into());
        assert_eq!(e.code, "deadline_exceeded");
        assert_eq!(e.retry_after_ms, None);
        let e = engine_error("memory_pressure: ingest of ~10 bytes would exceed".into());
        assert_eq!(e.code, "memory_pressure");
        assert_eq!(e.retry_after_ms, Some(RETRY_AFTER_MS));
        let e = engine_error("journal append failed: disk".into());
        assert_eq!(e.code, "journal");
        let e = engine_error("anything else".into());
        assert_eq!(e.code, "engine_error");
    }

    #[test]
    fn mark_degraded_appends_member() {
        let body = obj(vec![("groups", Json::Arr(vec![]))]);
        let marked = mark_degraded(body).to_string();
        assert_eq!(marked, r#"{"groups":[],"degraded":true}"#);
    }
}
