//! The TCP server: accept loop, per-connection threads, dispatch.
//!
//! Plain `std::net` blocking I/O with one thread per connection — the
//! workspace ships no async runtime, and the expected client population
//! (analysts, dashboards, the load generator) is tens of connections,
//! far below where thread-per-connection hurts. All connections share
//! one [`Engine`] behind its internal `RwLock`.
//!
//! Shutdown protocol: any client may send `{"cmd":"shutdown"}`. The
//! handler acknowledges, raises the shared flag, and pokes the listener
//! with a loopback connection so the blocking `accept` wakes up; the
//! accept loop then drains its connection threads, optionally writes a
//! final snapshot, and logs the metrics line to stderr.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crate::engine::Engine;
use crate::json::{obj, Json};
use crate::metrics::Metrics;
use crate::protocol::{err_response, ok_response, parse_request, ProtoError, Request};

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    engine: Arc<Engine>,
    shutdown: Arc<AtomicBool>,
    /// Snapshot written right before exit, when set.
    pub snapshot_on_exit: Option<PathBuf>,
}

impl Server {
    /// Bind to `addr` (e.g. `127.0.0.1:7411`; port 0 picks an ephemeral
    /// port — read it back with [`local_addr`](Self::local_addr)).
    pub fn bind(addr: &str, engine: Arc<Engine>) -> Result<Server, String> {
        let listener =
            TcpListener::bind(addr).map_err(|e| format!("cannot bind {addr}: {e}"))?;
        Ok(Server {
            listener,
            engine,
            shutdown: Arc::new(AtomicBool::new(false)),
            snapshot_on_exit: None,
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.listener.local_addr().expect("bound listener has an address")
    }

    /// Serve until a client sends `shutdown`. Returns after all
    /// connection threads drained and the metrics line was logged.
    pub fn run(self) -> Result<(), String> {
        let addr = self.local_addr();
        let mut handles = Vec::new();
        // Clones of every accepted stream, so the drain below can force
        // connections blocked in a read to wake up and exit.
        let mut open: Vec<TcpStream> = Vec::new();
        for conn in self.listener.incoming() {
            if self.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let stream = match conn {
                Ok(s) => s,
                Err(e) => {
                    topk_obs::warn!("accept failed: {e}");
                    continue;
                }
            };
            Metrics::incr(&self.engine.metrics.connections);
            if let Ok(clone) = stream.try_clone() {
                open.push(clone);
            }
            let engine = Arc::clone(&self.engine);
            let shutdown = Arc::clone(&self.shutdown);
            handles.push(std::thread::spawn(move || {
                handle_connection(stream, &engine, &shutdown, addr);
            }));
        }
        // Force-close every connection (idle clients sit in a blocking
        // read and would otherwise keep the join below waiting forever),
        // then drain the handler threads.
        for s in &open {
            let _ = s.shutdown(Shutdown::Both);
        }
        for h in handles {
            let _ = h.join();
        }
        if let Some(path) = &self.snapshot_on_exit {
            match self.engine.snapshot(path) {
                Ok(bytes) => {
                    topk_obs::info!("exit snapshot: {} ({bytes} bytes)", path.display())
                }
                Err(e) => topk_obs::error!("exit snapshot failed: {e}"),
            }
        }
        topk_obs::info!("topk-service: {}", self.engine.metrics.log_line());
        Ok(())
    }

    /// Run on a background thread; returns the bound address and the
    /// join handle (used by tests and the load generator).
    pub fn spawn(self) -> (SocketAddr, std::thread::JoinHandle<Result<(), String>>) {
        let addr = self.local_addr();
        (addr, std::thread::spawn(move || self.run()))
    }
}

fn handle_connection(
    stream: TcpStream,
    engine: &Engine,
    shutdown: &AtomicBool,
    addr: SocketAddr,
) {
    let reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = BufWriter::new(stream);
    for line in reader.lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break, // client hung up mid-line
        };
        if line.trim().is_empty() {
            continue;
        }
        let (response, stop) = dispatch(&line, engine);
        if writer
            .write_all(response.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .and_then(|()| writer.flush())
            .is_err()
        {
            break;
        }
        if stop {
            shutdown.store(true, Ordering::SeqCst);
            // Wake the blocking accept so the run loop can exit.
            let _ = TcpStream::connect(addr);
            break;
        }
    }
}

/// Execute one request line; returns the response and whether the server
/// should shut down.
pub fn dispatch(line: &str, engine: &Engine) -> (String, bool) {
    let request = match parse_request(line) {
        Ok(r) => r,
        Err(e) => {
            Metrics::incr(&engine.metrics.errors);
            return (err_response(&e), false);
        }
    };
    let engine_err = |message: String| ProtoError {
        code: "engine_error",
        message,
    };
    let result: Result<Json, ProtoError> = match request {
        Request::Ping => Ok(obj(vec![("pong", Json::Bool(true))])),
        Request::Stats => Ok(engine.stats_json()),
        Request::Metrics => Ok(obj(vec![(
            "text",
            Json::Str(engine.metrics.registry().prometheus_text()),
        )])),
        Request::Trace { enabled, out } => {
            if let Some(on) = enabled {
                topk_obs::span::set_enabled(on);
            }
            let mut members = vec![(
                "enabled",
                Json::Bool(topk_obs::span::is_enabled()),
            )];
            let written = match &out {
                Some(path) => {
                    let spans = topk_obs::span::take_spans();
                    let n = spans.len();
                    match std::fs::write(path, topk_obs::chrome_trace(&spans)) {
                        Ok(()) => Some((path.clone(), n)),
                        Err(e) => {
                            return {
                                Metrics::incr(&engine.metrics.errors);
                                (
                                    err_response(&ProtoError {
                                        code: "io_error",
                                        message: format!("cannot write trace {path}: {e}"),
                                    }),
                                    false,
                                )
                            }
                        }
                    }
                }
                None => None,
            };
            match written {
                Some((path, n)) => {
                    members.push(("out", Json::Str(path)));
                    members.push(("spans", Json::Num(n as f64)));
                }
                None => {
                    members.push((
                        "spans_buffered",
                        Json::Num(topk_obs::span::pending() as f64),
                    ));
                }
            }
            Ok(obj(members))
        }
        Request::Shutdown => {
            return (
                ok_response(obj(vec![("stopping", Json::Bool(true))])),
                true,
            )
        }
        Request::Ingest(rows) => {
            let n = rows.len();
            engine
                .ingest(rows)
                .map(|generation| {
                    obj(vec![
                        ("ingested", Json::Num(n as f64)),
                        ("generation", Json::Num(generation as f64)),
                    ])
                })
                .map_err(engine_err)
        }
        Request::TopK { k } => engine.query_topk(k).map_err(engine_err),
        Request::TopR { k } => engine.query_topr(k).map_err(engine_err),
        Request::Snapshot { path } => engine
            .snapshot(std::path::Path::new(&path))
            .map(|bytes| {
                obj(vec![
                    ("path", Json::Str(path.clone())),
                    ("bytes", Json::Num(bytes as f64)),
                ])
            })
            .map_err(|m| ProtoError {
                code: "io_error",
                message: m,
            }),
        Request::Restore { path } => engine
            .restore(std::path::Path::new(&path))
            .map(|generation| {
                obj(vec![
                    ("path", Json::Str(path.clone())),
                    ("generation", Json::Num(generation as f64)),
                ])
            })
            .map_err(|m| ProtoError {
                code: "io_error",
                message: m,
            }),
    };
    match result {
        Ok(body) => (ok_response(body), false),
        Err(e) => {
            Metrics::incr(&engine.metrics.errors);
            (err_response(&e), false)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;

    fn engine() -> Engine {
        Engine::new(EngineConfig {
            parallelism: topk_core::Parallelism::sequential(),
            ..Default::default()
        })
        .unwrap()
    }

    #[test]
    fn dispatch_ping_ingest_query() {
        let e = engine();
        let (r, stop) = dispatch(r#"{"cmd":"ping"}"#, &e);
        assert_eq!(r, r#"{"ok":true,"pong":true}"#);
        assert!(!stop);
        let (r, _) = dispatch(
            r#"{"cmd":"ingest","batch":[{"fields":["ann xu"]},{"fields":["ann xu"]}]}"#,
            &e,
        );
        assert_eq!(r, r#"{"ok":true,"ingested":2,"generation":2}"#);
        let (r, _) = dispatch(r#"{"cmd":"topk","k":1}"#, &e);
        assert!(r.starts_with(r#"{"ok":true,"groups":[{"rank":1,"weight":2,"size":2"#), "{r}");
    }

    #[test]
    fn dispatch_errors_count_and_envelope() {
        let e = engine();
        let (r, stop) = dispatch("garbage", &e);
        assert!(r.contains(r#""code":"bad_json""#), "{r}");
        assert!(!stop);
        let (r, _) = dispatch(r#"{"cmd":"restore","path":"/nonexistent/x"}"#, &e);
        assert!(r.contains(r#""code":"io_error""#), "{r}");
        assert_eq!(Metrics::get(&e.metrics.errors), 2);
    }

    #[test]
    fn dispatch_metrics_returns_prometheus_text() {
        let e = engine();
        dispatch(
            r#"{"cmd":"ingest","batch":[{"fields":["bo liu"]}]}"#,
            &e,
        );
        dispatch(r#"{"cmd":"topk","k":1}"#, &e);
        let (r, stop) = dispatch(r#"{"cmd":"metrics"}"#, &e);
        assert!(!stop);
        let v = crate::json::parse(&r).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        let text = v.get("text").unwrap().as_str().unwrap();
        assert!(text.contains("topk_queries_total 1\n"), "{text}");
        assert!(text.contains("topk_cache_misses_total 1\n"), "{text}");
        assert!(text.contains("topk_cache_hits_total 0\n"), "{text}");
        assert!(
            text.contains("# TYPE topk_query_latency_micros histogram\n"),
            "{text}"
        );
        assert!(text.contains("topk_query_latency_micros_bucket{le=\""), "{text}");
    }

    #[test]
    fn dispatch_trace_toggles_and_writes() {
        let e = engine();
        // Inspection only: reports the current state without changing it.
        let (r, _) = dispatch(r#"{"cmd":"trace"}"#, &e);
        assert!(r.contains(r#""spans_buffered":"#), "{r}");
        let (r, _) = dispatch(r#"{"cmd":"trace","enabled":true}"#, &e);
        assert!(r.contains(r#""enabled":true"#), "{r}");
        dispatch(
            r#"{"cmd":"ingest","batch":[{"fields":["cam po"]}]}"#,
            &e,
        );
        dispatch(r#"{"cmd":"topk","k":1}"#, &e);
        let path = std::env::temp_dir().join("topk_dispatch_trace_test.json");
        let line = format!(
            r#"{{"cmd":"trace","enabled":false,"out":"{}"}}"#,
            path.display()
        );
        let (r, _) = dispatch(&line, &e);
        assert!(r.contains(r#""enabled":false"#), "{r}");
        assert!(r.contains(r#""spans":"#), "{r}");
        let trace = std::fs::read_to_string(&path).unwrap();
        assert!(trace.starts_with(r#"{"traceEvents":["#), "{trace}");
        assert!(trace.contains(r#""name":"service.query""#), "{trace}");
        let _ = std::fs::remove_file(&path);
        // Unwritable path yields the io_error envelope.
        let (r, _) = dispatch(
            r#"{"cmd":"trace","out":"/nonexistent-dir/x/trace.json"}"#,
            &e,
        );
        assert!(r.contains(r#""code":"io_error""#), "{r}");
    }

    #[test]
    fn dispatch_shutdown_flags_stop() {
        let e = engine();
        let (r, stop) = dispatch(r#"{"cmd":"shutdown"}"#, &e);
        assert!(stop);
        assert!(r.contains("stopping"), "{r}");
    }
}
