//! `topk-service`: a long-lived dedup-aware top-k query server.
//!
//! The batch pipeline answers one query per process: load, tokenize,
//! collapse, prune, exit. This crate keeps the collapsed state resident
//! instead. A [`Server`] owns one [`Engine`] — N per-shard
//! [`IncrementalDedup`](topk_core::IncrementalDedup) collapses, routed
//! by blocking partition ([`shard`]), behind a reader-writer core lock —
//! and speaks a line-oriented JSON protocol over TCP (one JSON object
//! per line in each direction; see `docs/SERVICE.md` for schemas).
//! Clients stream records in and ask TopK/TopR questions between
//! ingests without ever re-reading or re-tokenizing the corpus.
//!
//! Three properties the design leans on:
//!
//! - **Batch-identical answers.** Ingested records are tokenized
//!   immediately but collapsed lazily at query time under the corpus
//!   statistics current at that moment, so a stream that is fully
//!   ingested before its first query produces byte-identical responses
//!   to the batch pipeline over the same data ([`engine`] explains the
//!   drift caveat for interleaved ingest/query workloads).
//! - **O(1) repeat queries.** Query results are cached keyed on
//!   (query parameters, ingest generation); any ingestion invalidates
//!   the cache, so a quiet stream serves repeats from memory.
//! - **Cheap restarts.** [`snapshot`] persists the collapsed state
//!   (union-find, blocking index, records, generation) to a versioned,
//!   checksummed binary file; restore skips all predicate work.
//!
//! Everything is `std`-only — no async runtime, no serde — matching the
//! workspace's offline-build constraint.

#![warn(missing_docs)]
// A long-lived server must not panic on malformed internal state: every
// fallible path surfaces an error envelope instead. Tests opt back in
// per-module.
#![deny(clippy::unwrap_used, clippy::expect_used)]

pub mod client;
pub mod corpus;
pub mod engine;
pub mod introspection;
pub mod journal;
pub mod json;
pub mod metrics;
pub mod overload;
pub mod protocol;
pub mod replication;
pub mod server;
pub mod shard;
pub mod snapshot;

pub use client::{Client, ClientConfig};
pub use corpus::{
    generic_stack, load_corpus, load_dataset, stack_from_stats, Corpus, CorpusOptions,
};
pub use engine::{Engine, EngineConfig};
pub use introspection::{ApproxProfile, ProfileRing, QueryProfile, ShardProfile, SlowQueryLog};
pub use journal::{Journal, JournalSet, Row, SetRecovery};
pub use json::Json;
pub use metrics::Metrics;
pub use overload::OverloadControl;
pub use protocol::{parse_request, parse_request_meta, ProtoError, Request, RequestMeta};
pub use replication::{spawn_tailer, ReplicaStatus, Role};
pub use server::{Server, ServerConfig};
pub use shard::ShardRouter;
