//! Wire protocol: one JSON object per line, both directions.
//!
//! Requests carry a `cmd` discriminator; responses always carry `ok`.
//! Failures use a uniform error envelope
//! `{"ok":false,"error":{"code":...,"message":...}}` so clients can
//! branch on a stable machine-readable `code` while logging the human
//! message. Full schemas: `docs/SERVICE.md`.
//!
//! Three opt-in members ride on top of the core schema: any request may
//! carry a `"trace":"<id>"` string (surfaced by [`parse_request_meta`];
//! the server stamps it onto its spans and the slow-query log so a
//! client-generated id stitches both timelines) and/or a
//! `"deadline_ms":<n>` wall-clock budget (the server threads the
//! remaining budget through every pipeline stage and aborts with
//! `err:"deadline_exceeded"` rather than burn work past it), and the
//! query commands accept `"explain":true` to get a `profile` member
//! back (`docs/OBSERVABILITY.md`).

use crate::json::{obj, parse, Json};

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Insert records: each row is (field texts, weight).
    Ingest(Vec<(Vec<String>, f64)>),
    /// TopK count-style query.
    TopK {
        /// Number of groups wanted.
        k: usize,
        /// When set, answer approximately from the ingest-time sample
        /// with this relative-error target (0 < ε < 1); groups whose
        /// confidence interval overlaps the K-boundary are escalated
        /// to the exact pipeline.
        approx: Option<f64>,
        /// Attach a `QueryProfile` to the response as `profile`.
        explain: bool,
    },
    /// Rank-style query (order + upper bounds).
    TopR {
        /// Number of ranked groups wanted.
        k: usize,
        /// Same as [`Request::TopK::approx`]: optional relative-error
        /// target for a sampled answer with exact escalation.
        approx: Option<f64>,
        /// Attach a `QueryProfile` to the response as `profile`.
        explain: bool,
    },
    /// Engine and metrics counters.
    Stats,
    /// Prometheus text exposition of the engine's metric registry.
    Metrics,
    /// Rolling-window SLO evaluation (availability, p99 vs target,
    /// error-budget burn over 1m/5m/1h) plus uptime.
    Health,
    /// Drain the ring buffer of explained-query profiles.
    Profiles,
    /// Inspect or change span tracing at runtime: toggle collection
    /// and/or drain buffered spans (to a server-side file, or inline).
    Trace {
        /// `Some(true)`/`Some(false)` turns collection on/off; `None`
        /// leaves it as is (pure inspection).
        enabled: Option<bool>,
        /// When set, drain buffered spans to this server-side path as
        /// Chrome `trace_event` JSON.
        out: Option<String>,
        /// When true, drain buffered spans into the response itself
        /// (a `spans` array) — how a remote client fetches server
        /// spans to stitch a cross-process trace.
        inline: bool,
    },
    /// Persist the collapsed state to a server-side path.
    Snapshot {
        /// Destination file path (on the server's filesystem).
        path: String,
    },
    /// Replace the engine state from a snapshot file.
    Restore {
        /// Source file path (on the server's filesystem).
        path: String,
    },
    /// Stop the server after draining open connections.
    Shutdown,
    /// Switch the connection into a one-way replication stream: the
    /// server answers with a JSON header (snapshot bootstrap or tail
    /// resume), then ships checksummed journal-entry frames until the
    /// connection drops. Only meaningful on a dedicated connection —
    /// see `crate::replication` for the wire format.
    Replicate {
        /// The requesting replica's epoch; a server whose own epoch is
        /// older refuses with `err:"not_primary"` (it is stale).
        epoch: u64,
        /// Resume cursor: the next entry sequence the replica expects.
        /// Absent on first boot — forces a snapshot bootstrap.
        from: Option<u64>,
    },
    /// Promote a replica to primary (manual failover): stops its
    /// tailer, bumps the epoch, and starts accepting writes. Idempotent
    /// on a primary.
    Promote,
    /// Replication status: role, epoch, stream position, replica lag.
    ReplStatus,
}

/// A protocol-level failure, carried into the error envelope.
#[derive(Debug, Clone, PartialEq)]
pub struct ProtoError {
    /// Stable machine-readable code. Parse/dispatch failures use
    /// `bad_json`, `bad_request`, `engine_error`, or `io_error`; the
    /// server's robustness layer adds `overloaded` (connection cap
    /// reached, retry later), `timeout` (read or idle deadline
    /// exceeded), `too_large` (request over the size cap, split the
    /// batch), `internal` (handler panic, state recovered), `journal`
    /// (write-ahead append failed — disk full or I/O error; the ingest
    /// was **not** applied), `not_primary` (the server is a replica
    /// or a stale ex-primary; send writes to the current primary —
    /// failover-aware clients rotate endpoints on this code), and the
    /// overload-control pair `deadline_exceeded` (the request's
    /// `deadline_ms` budget expired at a stage boundary — retrying
    /// without more budget cannot succeed) and `memory_pressure` (the
    /// ingest would cross `--memory-budget-bytes`; back off and retry).
    /// Of these, `overloaded`, `timeout`, `internal`, and
    /// `memory_pressure` are safe to retry for idempotent commands; see
    /// `docs/ROBUSTNESS.md`.
    pub code: &'static str,
    /// Human-readable detail.
    pub message: String,
    /// Optional backoff hint, rendered as the envelope's
    /// `retry_after_ms` member (`overloaded` sheds and `memory_pressure`
    /// rejections carry one; retry-aware clients sleep it instead of
    /// guessing).
    pub retry_after_ms: Option<u64>,
}

impl ProtoError {
    /// An error with the given code.
    pub fn new(code: &'static str, message: impl Into<String>) -> Self {
        ProtoError {
            code,
            message: message.into(),
            retry_after_ms: None,
        }
    }

    /// A `bad_request` error.
    pub fn bad_request(message: impl Into<String>) -> Self {
        Self::new("bad_request", message)
    }

    /// Attach a backoff hint (milliseconds) to the envelope.
    pub fn with_retry_after(mut self, ms: u64) -> Self {
        self.retry_after_ms = Some(ms);
        self
    }
}

/// Request metadata riding alongside the command, surfaced by
/// [`parse_request_meta`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RequestMeta {
    /// Opaque client-chosen trace id, stamped onto server spans and
    /// slow-query records.
    pub trace: Option<String>,
    /// Remaining wall-clock budget of this request in milliseconds;
    /// the server aborts the request at the first stage boundary past
    /// it (`err:"deadline_exceeded"`).
    pub deadline_ms: Option<u64>,
}

/// Parse one request line, discarding the optional metadata (callers
/// that don't propagate traces or deadlines).
pub fn parse_request(line: &str) -> Result<Request, ProtoError> {
    parse_request_meta(line).map(|(req, _)| req)
}

/// Parse one request line plus its optional metadata: the `"trace"` id
/// (an opaque client-chosen string stamped onto server spans and
/// slow-query records for cross-process correlation) and the
/// `"deadline_ms"` wall-clock budget.
pub fn parse_request_meta(line: &str) -> Result<(Request, RequestMeta), ProtoError> {
    let v = parse(line).map_err(|e| ProtoError::new("bad_json", e))?;
    let trace = match v.get("trace") {
        None => None,
        Some(t) => Some(
            t.as_str()
                .ok_or_else(|| ProtoError::bad_request("`trace` must be a string id"))?
                .to_string(),
        ),
    };
    let deadline_ms = match v.get("deadline_ms") {
        None => None,
        Some(d) => Some(
            d.as_f64()
                .filter(|m| m.fract() == 0.0 && *m >= 0.0)
                .map(|m| m as u64)
                .ok_or_else(|| {
                    ProtoError::bad_request("`deadline_ms` must be a non-negative integer")
                })?,
        ),
    };
    let cmd = v
        .get("cmd")
        .and_then(Json::as_str)
        .ok_or_else(|| ProtoError::bad_request("missing string `cmd`"))?;
    let req = match cmd {
        "ping" => Request::Ping,
        "stats" => Request::Stats,
        "metrics" => Request::Metrics,
        "health" => Request::Health,
        "profiles" => Request::Profiles,
        "trace" => {
            let enabled = match v.get("enabled") {
                None => None,
                Some(b) => Some(
                    b.as_bool()
                        .ok_or_else(|| ProtoError::bad_request("`enabled` must be a boolean"))?,
                ),
            };
            let out = match v.get("out") {
                None => None,
                Some(p) => Some(
                    p.as_str()
                        .ok_or_else(|| ProtoError::bad_request("`out` must be a string path"))?
                        .to_string(),
                ),
            };
            let inline = parse_flag(&v, "inline")?;
            Request::Trace {
                enabled,
                out,
                inline,
            }
        }
        "shutdown" => Request::Shutdown,
        "ingest" => parse_ingest(&v)?,
        "topk" => Request::TopK {
            k: parse_k(&v)?,
            approx: parse_approx(&v)?,
            explain: parse_flag(&v, "explain")?,
        },
        "topr" => Request::TopR {
            k: parse_k(&v)?,
            approx: parse_approx(&v)?,
            explain: parse_flag(&v, "explain")?,
        },
        "snapshot" => Request::Snapshot {
            path: parse_path(&v)?,
        },
        "restore" => Request::Restore {
            path: parse_path(&v)?,
        },
        "replicate" => {
            let epoch = v
                .get("epoch")
                .and_then(Json::as_f64)
                .filter(|e| e.fract() == 0.0 && *e >= 0.0)
                .map(|e| e as u64)
                .ok_or_else(|| ProtoError::bad_request("missing or non-integer `epoch`"))?;
            let from = match v.get("from") {
                None => None,
                Some(f) => Some(
                    f.as_f64()
                        .filter(|s| s.fract() == 0.0 && *s >= 0.0)
                        .map(|s| s as u64)
                        .ok_or_else(|| {
                            ProtoError::bad_request("`from` must be a non-negative integer")
                        })?,
                ),
            };
            Request::Replicate { epoch, from }
        }
        "promote" => Request::Promote,
        "replstatus" => Request::ReplStatus,
        other => return Err(ProtoError::bad_request(format!("unknown cmd `{other}`"))),
    };
    Ok((req, RequestMeta { trace, deadline_ms }))
}

/// An optional boolean member, defaulting to false.
fn parse_flag(v: &Json, name: &str) -> Result<bool, ProtoError> {
    match v.get(name) {
        None => Ok(false),
        Some(b) => b
            .as_bool()
            .ok_or_else(|| ProtoError::bad_request(format!("`{name}` must be a boolean"))),
    }
}

fn parse_k(v: &Json) -> Result<usize, ProtoError> {
    let k = v
        .get("k")
        .and_then(Json::as_usize)
        .ok_or_else(|| ProtoError::bad_request("missing or non-integer `k`"))?;
    if k == 0 {
        return Err(ProtoError::bad_request("`k` must be at least 1"));
    }
    Ok(k)
}

fn parse_approx(v: &Json) -> Result<Option<f64>, ProtoError> {
    let Some(a) = v.get("approx") else {
        return Ok(None);
    };
    let eps = a
        .as_f64()
        .ok_or_else(|| ProtoError::bad_request("`approx` must be a number"))?;
    topk_approx::validate_epsilon(eps).map_err(ProtoError::bad_request)?;
    Ok(Some(eps))
}

fn parse_path(v: &Json) -> Result<String, ProtoError> {
    v.get("path")
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| ProtoError::bad_request("missing string `path`"))
}

fn parse_ingest(v: &Json) -> Result<Request, ProtoError> {
    let mut rows = Vec::new();
    match (v.get("fields"), v.get("batch")) {
        (Some(_), Some(_)) => {
            return Err(ProtoError::bad_request(
                "give either `fields` (single record) or `batch`, not both",
            ))
        }
        (Some(fields), None) => rows.push(parse_row(fields, v.get("weight"))?),
        (None, Some(batch)) => {
            let items = batch
                .as_arr()
                .ok_or_else(|| ProtoError::bad_request("`batch` must be an array"))?;
            if items.is_empty() {
                return Err(ProtoError::bad_request("`batch` is empty"));
            }
            for item in items {
                let fields = item
                    .get("fields")
                    .ok_or_else(|| ProtoError::bad_request("batch item missing `fields`"))?;
                rows.push(parse_row(fields, item.get("weight"))?);
            }
        }
        (None, None) => return Err(ProtoError::bad_request("ingest needs `fields` or `batch`")),
    }
    Ok(Request::Ingest(rows))
}

fn parse_row(fields: &Json, weight: Option<&Json>) -> Result<(Vec<String>, f64), ProtoError> {
    let arr = fields
        .as_arr()
        .ok_or_else(|| ProtoError::bad_request("`fields` must be an array of strings"))?;
    let mut texts = Vec::with_capacity(arr.len());
    for f in arr {
        texts.push(
            f.as_str()
                .ok_or_else(|| ProtoError::bad_request("`fields` must be an array of strings"))?
                .to_string(),
        );
    }
    let w = match weight {
        None => 1.0,
        Some(w) => w
            .as_f64()
            .ok_or_else(|| ProtoError::bad_request("`weight` must be a number"))?,
    };
    Ok((texts, w))
}

/// Render a success response: `{"ok":true, ...body members}`.
pub fn ok_response(body: Json) -> String {
    let mut members = vec![("ok".to_string(), Json::Bool(true))];
    match body {
        Json::Obj(rest) => members.extend(rest),
        Json::Null => {}
        other => members.push(("result".to_string(), other)),
    }
    Json::Obj(members).to_string()
}

/// Render the error envelope.
pub fn err_response(e: &ProtoError) -> String {
    let mut error = vec![
        ("code", Json::Str(e.code.to_string())),
        ("message", Json::Str(e.message.clone())),
    ];
    if let Some(ms) = e.retry_after_ms {
        error.push(("retry_after_ms", Json::Num(ms as f64)));
    }
    obj(vec![("ok", Json::Bool(false)), ("error", obj(error))]).to_string()
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_commands() {
        assert_eq!(parse_request(r#"{"cmd":"ping"}"#).unwrap(), Request::Ping);
        assert_eq!(parse_request(r#"{"cmd":"stats"}"#).unwrap(), Request::Stats);
        assert_eq!(
            parse_request(r#"{"cmd":"shutdown"}"#).unwrap(),
            Request::Shutdown
        );
        assert_eq!(
            parse_request(r#"{"cmd":"topk","k":5}"#).unwrap(),
            Request::TopK {
                k: 5,
                approx: None,
                explain: false
            }
        );
        assert_eq!(
            parse_request(r#"{"cmd":"topr","k":2}"#).unwrap(),
            Request::TopR {
                k: 2,
                approx: None,
                explain: false
            }
        );
        assert_eq!(
            parse_request(r#"{"cmd":"topk","k":5,"approx":0.05}"#).unwrap(),
            Request::TopK {
                k: 5,
                approx: Some(0.05),
                explain: false
            }
        );
        assert_eq!(
            parse_request(r#"{"cmd":"topr","k":3,"approx":0.2}"#).unwrap(),
            Request::TopR {
                k: 3,
                approx: Some(0.2),
                explain: false
            }
        );
        assert_eq!(
            parse_request(r#"{"cmd":"topk","k":5,"explain":true}"#).unwrap(),
            Request::TopK {
                k: 5,
                approx: None,
                explain: true
            }
        );
        assert_eq!(
            parse_request(r#"{"cmd":"topr","k":1,"approx":0.1,"explain":true}"#).unwrap(),
            Request::TopR {
                k: 1,
                approx: Some(0.1),
                explain: true
            }
        );
        assert_eq!(
            parse_request(r#"{"cmd":"health"}"#).unwrap(),
            Request::Health
        );
        assert_eq!(
            parse_request(r#"{"cmd":"profiles"}"#).unwrap(),
            Request::Profiles
        );
        assert_eq!(
            parse_request(r#"{"cmd":"snapshot","path":"/tmp/x"}"#).unwrap(),
            Request::Snapshot {
                path: "/tmp/x".into()
            }
        );
        assert_eq!(
            parse_request(r#"{"cmd":"metrics"}"#).unwrap(),
            Request::Metrics
        );
        assert_eq!(
            parse_request(r#"{"cmd":"replicate","epoch":1}"#).unwrap(),
            Request::Replicate {
                epoch: 1,
                from: None
            }
        );
        assert_eq!(
            parse_request(r#"{"cmd":"replicate","epoch":3,"from":42}"#).unwrap(),
            Request::Replicate {
                epoch: 3,
                from: Some(42)
            }
        );
        assert_eq!(
            parse_request(r#"{"cmd":"promote"}"#).unwrap(),
            Request::Promote
        );
        assert_eq!(
            parse_request(r#"{"cmd":"replstatus"}"#).unwrap(),
            Request::ReplStatus
        );
        assert_eq!(
            parse_request(r#"{"cmd":"trace"}"#).unwrap(),
            Request::Trace {
                enabled: None,
                out: None,
                inline: false
            }
        );
        assert_eq!(
            parse_request(r#"{"cmd":"trace","enabled":true,"out":"/tmp/t.json"}"#).unwrap(),
            Request::Trace {
                enabled: Some(true),
                out: Some("/tmp/t.json".into()),
                inline: false
            }
        );
        assert_eq!(
            parse_request(r#"{"cmd":"trace","enabled":false,"inline":true}"#).unwrap(),
            Request::Trace {
                enabled: Some(false),
                out: None,
                inline: true
            }
        );
        assert_eq!(
            parse_request(r#"{"cmd":"ingest","fields":["a b","c"],"weight":2}"#).unwrap(),
            Request::Ingest(vec![(vec!["a b".into(), "c".into()], 2.0)])
        );
        assert_eq!(
            parse_request(
                r#"{"cmd":"ingest","batch":[{"fields":["x"]},{"fields":["y"],"weight":3}]}"#
            )
            .unwrap(),
            Request::Ingest(vec![(vec!["x".into()], 1.0), (vec!["y".into()], 3.0)])
        );
    }

    #[test]
    fn rejects_malformed_requests() {
        for (line, code) in [
            ("not json", "bad_json"),
            (r#"{"k":1}"#, "bad_request"),
            (r#"{"cmd":"nope"}"#, "bad_request"),
            (r#"{"cmd":"topk"}"#, "bad_request"),
            (r#"{"cmd":"topk","k":0}"#, "bad_request"),
            (r#"{"cmd":"topk","k":1.5}"#, "bad_request"),
            (r#"{"cmd":"topk","k":5,"approx":"tight"}"#, "bad_request"),
            (r#"{"cmd":"topk","k":5,"approx":0}"#, "bad_request"),
            (r#"{"cmd":"topk","k":5,"approx":1.5}"#, "bad_request"),
            (r#"{"cmd":"topr","k":5,"approx":-0.1}"#, "bad_request"),
            (r#"{"cmd":"snapshot"}"#, "bad_request"),
            (r#"{"cmd":"replicate"}"#, "bad_request"),
            (r#"{"cmd":"replicate","epoch":1.5}"#, "bad_request"),
            (r#"{"cmd":"replicate","epoch":1,"from":-3}"#, "bad_request"),
            (r#"{"cmd":"replicate","epoch":1,"from":"x"}"#, "bad_request"),
            (r#"{"cmd":"trace","enabled":"yes"}"#, "bad_request"),
            (r#"{"cmd":"trace","out":7}"#, "bad_request"),
            (r#"{"cmd":"trace","inline":"yes"}"#, "bad_request"),
            (r#"{"cmd":"topk","k":5,"explain":"yes"}"#, "bad_request"),
            (r#"{"cmd":"ping","trace":7}"#, "bad_request"),
            (r#"{"cmd":"ingest"}"#, "bad_request"),
            (r#"{"cmd":"ingest","batch":[]}"#, "bad_request"),
            (r#"{"cmd":"ingest","fields":[1]}"#, "bad_request"),
            (
                r#"{"cmd":"ingest","fields":["a"],"batch":[]}"#,
                "bad_request",
            ),
            (
                r#"{"cmd":"ingest","fields":["a"],"weight":"x"}"#,
                "bad_request",
            ),
        ] {
            let err = parse_request(line).unwrap_err();
            assert_eq!(err.code, code, "{line}: {}", err.message);
        }
    }

    #[test]
    fn trace_id_rides_on_any_request() {
        let (req, meta) = parse_request_meta(r#"{"cmd":"topk","k":3,"trace":"cli-42"}"#).unwrap();
        assert_eq!(
            req,
            Request::TopK {
                k: 3,
                approx: None,
                explain: false
            }
        );
        assert_eq!(meta.trace.as_deref(), Some("cli-42"));
        assert_eq!(meta.deadline_ms, None);
        let (req, meta) = parse_request_meta(r#"{"cmd":"ping"}"#).unwrap();
        assert_eq!(req, Request::Ping);
        assert_eq!(meta, RequestMeta::default());
        // parse_request drops the id but accepts the member.
        assert_eq!(
            parse_request(r#"{"cmd":"ping","trace":"t"}"#).unwrap(),
            Request::Ping
        );
    }

    #[test]
    fn deadline_rides_on_any_request() {
        let (req, meta) =
            parse_request_meta(r#"{"cmd":"topr","k":2,"deadline_ms":250,"trace":"t9"}"#).unwrap();
        assert_eq!(
            req,
            Request::TopR {
                k: 2,
                approx: None,
                explain: false
            }
        );
        assert_eq!(meta.deadline_ms, Some(250));
        assert_eq!(meta.trace.as_deref(), Some("t9"));
        // Zero budget is legal (expire-immediately probes).
        let (_, meta) = parse_request_meta(r#"{"cmd":"ping","deadline_ms":0}"#).unwrap();
        assert_eq!(meta.deadline_ms, Some(0));
        for bad in [
            r#"{"cmd":"ping","deadline_ms":-5}"#,
            r#"{"cmd":"ping","deadline_ms":1.5}"#,
            r#"{"cmd":"ping","deadline_ms":"fast"}"#,
        ] {
            assert_eq!(parse_request(bad).unwrap_err().code, "bad_request");
        }
    }

    #[test]
    fn envelopes() {
        assert_eq!(
            ok_response(crate::json::obj(vec![("n", Json::Num(3.0))])),
            r#"{"ok":true,"n":3}"#
        );
        assert_eq!(ok_response(Json::Null), r#"{"ok":true}"#);
        let e = ProtoError::bad_request("boom");
        assert_eq!(
            err_response(&e),
            r#"{"ok":false,"error":{"code":"bad_request","message":"boom"}}"#
        );
        let e = ProtoError::new("memory_pressure", "over budget").with_retry_after(250);
        assert_eq!(
            err_response(&e),
            r#"{"ok":false,"error":{"code":"memory_pressure","message":"over budget","retry_after_ms":250}}"#
        );
    }
}
