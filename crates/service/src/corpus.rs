//! Shared load-once / tokenize-once corpus path.
//!
//! Before the service existed, every `topk` CLI invocation re-read and
//! re-tokenized its dataset even when only query parameters changed
//! between runs. This module hoists that work into one place used by
//! *both* modes: the batch CLI loads a [`Corpus`] once and runs any
//! number of query kinds against it, and `topk serve --preload` feeds
//! the very same tokenized records into the resident engine, after which
//! queries never touch the raw file again.

use std::path::Path;
use std::sync::Arc;

use topk_predicates::{PredicateStack, QgramFractionNecessary, RareNameSufficient};
use topk_records::{tokenize_dataset_par, Dataset, FieldId, TokenizedRecord};
use topk_text::{CorpusStats, Parallelism};

/// Options controlling how a delimited file becomes a [`Corpus`].
#[derive(Debug, Clone)]
pub struct CorpusOptions {
    /// Column separator.
    pub delimiter: char,
    /// First row is a header row.
    pub has_header: bool,
    /// Weight column name, if any.
    pub weight_col: Option<String>,
    /// Ground-truth label column name, if any.
    pub label_col: Option<String>,
    /// Field used for matching (`None` = first data column).
    pub name_field: Option<String>,
    /// Thread budget for tokenization.
    pub parallelism: Parallelism,
}

impl Default for CorpusOptions {
    fn default() -> Self {
        CorpusOptions {
            delimiter: '\t',
            has_header: true,
            weight_col: None,
            label_col: None,
            name_field: None,
            parallelism: Parallelism::auto(),
        }
    }
}

/// A dataset loaded and tokenized exactly once, with its match field
/// resolved. Every query mode (batch `count`/`rank`/`thresh`, the
/// resident server) consumes this shape.
#[derive(Debug)]
pub struct Corpus {
    /// The raw records.
    pub data: Dataset,
    /// Token views, one per record, in record order.
    pub toks: Vec<TokenizedRecord>,
    /// The field queries match on.
    pub field: FieldId,
}

impl Corpus {
    /// Build the generic one-level predicate stack over the match field
    /// (rare-word sufficient + 3-gram-overlap necessary) — the same
    /// stack for batch and served queries, so their answers agree.
    pub fn stack(&self, max_df: u32, min_overlap: f64) -> PredicateStack {
        generic_stack(&self.toks, self.field, max_df, min_overlap)
    }
}

/// Load a delimited file into a [`Dataset`] (no tokenization — the
/// `topk client ingest` path ships raw texts and lets the server
/// tokenize). Native topk TSVs (tab separator, header, no explicit
/// weight/label columns) go through the strict reader; anything else
/// through the flexible one.
pub fn load_dataset(path: &Path, opts: &CorpusOptions) -> Result<Dataset, String> {
    let use_native = opts.delimiter == '\t'
        && opts.has_header
        && opts.weight_col.is_none()
        && opts.label_col.is_none()
        && topk_records::io::read_tsv(path).is_ok();
    let data = if use_native {
        topk_records::io::read_tsv(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?
    } else {
        let read_opts = topk_records::io::ReadOptions {
            delimiter: opts.delimiter,
            has_header: opts.has_header,
            weight_column: opts.weight_col.clone(),
            label_column: opts.label_col.clone(),
            normalize: true,
        };
        topk_records::io::read_delimited(path, &read_opts)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?
    };
    if data.is_empty() {
        return Err("dataset is empty".into());
    }
    Ok(data)
}

/// Load a delimited file into a [`Corpus`]: [`load_dataset`], resolve
/// the match field, tokenize once.
pub fn load_corpus(path: &Path, opts: &CorpusOptions) -> Result<Corpus, String> {
    let data = load_dataset(path, opts)?;
    let field = match &opts.name_field {
        Some(name) => data
            .schema()
            .field_id(name)
            .ok_or_else(|| format!("no field named `{name}` in the dataset"))?,
        None => FieldId(0),
    };
    let toks = tokenize_dataset_par(&data, opts.parallelism);
    Ok(Corpus { data, toks, field })
}

/// The generic predicate stack over `field`: rare-word sufficient
/// predicate with document frequencies over *distinct* field values,
/// plus a 3-gram-overlap necessary predicate.
///
/// Shared by the batch CLI and the engine so that a served query over
/// ingested records is the same computation as a batch query over the
/// same file.
pub fn generic_stack(
    toks: &[TokenizedRecord],
    field: FieldId,
    max_df: u32,
    min_overlap: f64,
) -> PredicateStack {
    let mut seen = std::collections::HashSet::new();
    let mut stats = CorpusStats::new();
    for t in toks {
        let f = t.field(field);
        if seen.insert(topk_text::hash::hash_str(&f.text)) {
            stats.add_document(&f.words);
        }
    }
    stack_from_stats(Arc::new(stats), field, max_df, min_overlap)
}

/// Assemble the generic stack from prebuilt corpus statistics (the
/// engine maintains its stats incrementally and calls this per flush).
pub fn stack_from_stats(
    stats: Arc<CorpusStats>,
    field: FieldId,
    max_df: u32,
    min_overlap: f64,
) -> PredicateStack {
    PredicateStack {
        levels: vec![(
            Box::new(RareNameSufficient::new("S", field, stats, max_df)),
            Box::new(QgramFractionNecessary::new("N", field, min_overlap, false)),
        )],
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn loads_and_resolves_field() {
        let dir = std::env::temp_dir().join("topk_corpus_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.tsv");
        let d = topk_datagen::generate_students(&topk_datagen::StudentConfig {
            n_students: 10,
            n_records: 40,
            ..Default::default()
        });
        topk_records::io::write_tsv(&d, &path).unwrap();
        let corpus = load_corpus(
            &path,
            &CorpusOptions {
                name_field: Some("name".into()),
                ..Default::default()
            },
        )
        .expect("loads");
        assert_eq!(corpus.toks.len(), corpus.data.len());
        assert_eq!(corpus.data.schema().field_name(corpus.field), "name");
        let stack = corpus.stack(30, 0.6);
        assert_eq!(stack.levels.len(), 1);
    }

    #[test]
    fn rejects_unknown_field_and_missing_file() {
        let err =
            load_corpus(Path::new("/nonexistent/x.tsv"), &CorpusOptions::default()).unwrap_err();
        assert!(err.contains("cannot read"), "{err}");
    }
}
