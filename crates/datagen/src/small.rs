//! Small labeled datasets for the accuracy experiment (paper Table 1,
//! Figure 7).
//!
//! The paper compares its segmentation answers with an exact solver on
//! four small benchmarks. We generate synthetic stand-ins at the same
//! record counts (and approximately the same entity counts):
//!
//! | name       | records | groups (paper) |
//! |------------|---------|----------------|
//! | Authors    | 1822    | 1466           |
//! | Restaurant | 860     | 734            |
//! | Address    | 306     | 218            |
//! | Getoor     | 1716    | 1172           |

use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};

use topk_records::{Dataset, Partition, Record, Schema};

use crate::names::{ns, person_name, word};
use crate::noise;

/// Which Table-1 dataset to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SmallDatasetKind {
    /// Singleton author-name mentions (from the citation data).
    Authors,
    /// Restaurant names and addresses (the classic Fodors/Zagat benchmark
    /// shape).
    Restaurant,
    /// A sample of the address data.
    Address,
    /// Citation records in the style of Bhattacharya & Getoor's data.
    Getoor,
}

impl SmallDatasetKind {
    /// Paper record count for this dataset.
    pub fn n_records(self) -> usize {
        match self {
            SmallDatasetKind::Authors => 1822,
            SmallDatasetKind::Restaurant => 860,
            SmallDatasetKind::Address => 306,
            SmallDatasetKind::Getoor => 1716,
        }
    }

    /// Paper group count for this dataset.
    pub fn n_groups(self) -> usize {
        match self {
            SmallDatasetKind::Authors => 1466,
            SmallDatasetKind::Restaurant => 734,
            SmallDatasetKind::Address => 218,
            SmallDatasetKind::Getoor => 1172,
        }
    }

    /// All four kinds.
    pub fn all() -> [SmallDatasetKind; 4] {
        [
            SmallDatasetKind::Authors,
            SmallDatasetKind::Restaurant,
            SmallDatasetKind::Address,
            SmallDatasetKind::Getoor,
        ]
    }

    /// Display name matching the paper's Table 1.
    pub fn name(self) -> &'static str {
        match self {
            SmallDatasetKind::Authors => "Authors",
            SmallDatasetKind::Restaurant => "Restaurant",
            SmallDatasetKind::Address => "Address",
            SmallDatasetKind::Getoor => "Getoor",
        }
    }
}

/// Mention counts per entity: every entity gets one record, remaining
/// records go to a skewed prefix of entities.
fn mention_counts<R: Rng + ?Sized>(rng: &mut R, n_entities: usize, n_records: usize) -> Vec<usize> {
    let mut counts = vec![1usize; n_entities];
    let extra = n_records - n_entities;
    let z = crate::zipf::ZipfSampler::new(n_entities, 1.0);
    for _ in 0..extra {
        counts[z.sample(rng)] += 1;
    }
    counts
}

/// Generate one of the Table-1 datasets with full ground truth.
pub fn small_dataset(kind: SmallDatasetKind, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed ^ kind.n_records() as u64);
    let n_groups = kind.n_groups();
    let counts = mention_counts(&mut rng, n_groups, kind.n_records());
    match kind {
        SmallDatasetKind::Authors => {
            let schema = Schema::new(vec!["name"]);
            let mut records = Vec::new();
            let mut labels = Vec::new();
            for (e, &c) in counts.iter().enumerate() {
                let clean = person_name(e as u64, 260, 1500);
                for _ in 0..c {
                    let mut m = clean.clone();
                    if rng.random_bool(0.4) {
                        m = noise::initialize_words(&mut rng, &m, 0.8);
                    }
                    if rng.random_bool(0.1) {
                        m = noise::typo(&mut rng, &m);
                    }
                    records.push(Record::new(vec![m]));
                    labels.push(e as u32);
                }
            }
            Dataset::with_truth(schema, records, Partition::from_labels(labels))
        }
        SmallDatasetKind::Restaurant => {
            let schema = Schema::new(vec!["name", "address", "city"]);
            let mut records = Vec::new();
            let mut labels = Vec::new();
            for (e, &c) in counts.iter().enumerate() {
                let name = format!(
                    "{} {}",
                    word(ns::RESTAURANT, e as u64),
                    word(ns::RESTAURANT, 1000 + e as u64)
                );
                let addr = format!(
                    "{} {}",
                    rng.random_range(1..999u32),
                    word(ns::STREET, rng.random_range(0..300u64))
                );
                let city = word(ns::LOCALITY, rng.random_range(0..25u64));
                for _ in 0..c {
                    let mut nm = name.clone();
                    let mut ad = addr.clone();
                    if rng.random_bool(0.15) {
                        nm = noise::typo(&mut rng, &nm);
                    }
                    if rng.random_bool(0.2) {
                        ad = noise::drop_word(&mut rng, &ad);
                    }
                    records.push(Record::new(vec![nm, ad, city.clone()]));
                    labels.push(e as u32);
                }
            }
            Dataset::with_truth(schema, records, Partition::from_labels(labels))
        }
        SmallDatasetKind::Address => {
            let schema = Schema::new(vec!["name", "address", "pin"]);
            let mut records = Vec::new();
            let mut labels = Vec::new();
            for (e, &c) in counts.iter().enumerate() {
                let name = person_name(20_000 + e as u64, 260, 1500);
                let addr = format!(
                    "{} {} {}",
                    rng.random_range(1..400u32),
                    word(ns::STREET, rng.random_range(0..300u64)),
                    word(ns::LOCALITY, rng.random_range(0..40u64))
                );
                let pin = format!("4110{:02}", rng.random_range(0..60u32));
                for _ in 0..c {
                    let mut nm = name.clone();
                    let mut ad = addr.clone();
                    if rng.random_bool(0.2) {
                        nm = noise::initialize_words(&mut rng, &nm, 0.7);
                    }
                    if rng.random_bool(0.1) {
                        nm = noise::typo(&mut rng, &nm);
                    }
                    if rng.random_bool(0.2) {
                        ad = noise::drop_word(&mut rng, &ad);
                    }
                    records.push(Record::new(vec![nm, ad, pin.clone()]));
                    labels.push(e as u32);
                }
            }
            Dataset::with_truth(schema, records, Partition::from_labels(labels))
        }
        SmallDatasetKind::Getoor => {
            let schema = Schema::new(vec!["author", "coauthors"]);
            let mut records = Vec::new();
            let mut labels = Vec::new();
            let coauthor_pool: Vec<String> = (0..400)
                .map(|i| person_name(90_000 + i, 260, 1500))
                .collect();
            for (e, &c) in counts.iter().enumerate() {
                let clean = person_name(50_000 + e as u64, 260, 1500);
                for _ in 0..c {
                    let mut m = clean.clone();
                    if rng.random_bool(0.35) {
                        m = noise::initialize_words(&mut rng, &m, 0.8);
                    }
                    if rng.random_bool(0.08) {
                        m = noise::typo(&mut rng, &m);
                    }
                    let n_co = rng.random_range(0..4usize);
                    let co: Vec<&str> = (0..n_co)
                        .map(|_| coauthor_pool[rng.random_range(0..coauthor_pool.len())].as_str())
                        .collect();
                    records.push(Record::new(vec![m, co.join(" ")]));
                    labels.push(e as u32);
                }
            }
            Dataset::with_truth(schema, records, Partition::from_labels(labels))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_counts_match_table1() {
        for kind in SmallDatasetKind::all() {
            let d = small_dataset(kind, 7);
            assert_eq!(d.len(), kind.n_records(), "{}", kind.name());
            assert_eq!(
                d.truth().unwrap().group_count(),
                kind.n_groups(),
                "{}",
                kind.name()
            );
        }
    }

    #[test]
    fn deterministic() {
        let a = small_dataset(SmallDatasetKind::Restaurant, 3);
        let b = small_dataset(SmallDatasetKind::Restaurant, 3);
        assert_eq!(a.records()[5], b.records()[5]);
    }

    #[test]
    fn names_stable() {
        assert_eq!(SmallDatasetKind::Authors.name(), "Authors");
        assert_eq!(SmallDatasetKind::all().len(), 4);
    }
}
