//! Synthetic address dataset (paper §6.1.3 substitute).
//!
//! Models the Pune asset-owner workload: each entity is a person at an
//! address; multiple asset providers contribute records, so the same
//! person/address shows up with dropped words, inserted filler words
//! ("near", "opp", "flat"), typos, and initialed names. Record weight is
//! the synthetic asset worth (the paper also assigned these
//! synthetically). Schema: `name, address, pin`.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use topk_records::{Dataset, Partition, Record, Schema};

use crate::names::{ns, person_name, word};
use crate::noise;
use crate::zipf::ZipfSampler;

/// Configuration for [`generate_addresses`].
#[derive(Debug, Clone)]
pub struct AddressConfig {
    /// Number of person/address entities.
    pub n_entities: usize,
    /// Total number of asset records.
    pub n_records: usize,
    /// Zipf exponent for assets-per-person skew.
    pub zipf_exponent: f64,
    /// Probability an address word is dropped.
    pub p_drop_word: f64,
    /// Probability a filler stop word is inserted.
    pub p_filler: f64,
    /// Probability of a typo in name or address.
    pub p_typo: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AddressConfig {
    fn default() -> Self {
        AddressConfig {
            n_entities: 15_000,
            n_records: 50_000,
            zipf_exponent: 0.9,
            p_drop_word: 0.2,
            p_filler: 0.4,
            p_typo: 0.08,
            seed: 0xADD2,
        }
    }
}

const FILLERS: &[&str] = &["near", "opp", "flat", "block", "main", "road", "behind"];

struct Entity {
    name: String,
    address: String,
    pin: String,
    worth: f64,
}

/// Generate the address dataset.
pub fn generate_addresses(cfg: &AddressConfig) -> Dataset {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let entities: Vec<Entity> = (0..cfg.n_entities)
        .map(|i| {
            let house = rng.random_range(1..400u32);
            let street = word(ns::STREET, rng.random_range(0..800u64));
            let street2 = word(ns::STREET, rng.random_range(0..800u64));
            let locality = word(ns::LOCALITY, rng.random_range(0..120u64));
            Entity {
                name: person_name(i as u64, 350, 3000),
                address: format!("{house} {street} {street2} {locality}"),
                pin: format!("4110{:02}", rng.random_range(0..60u32)),
                worth: (1.0 + noise::gaussian(&mut rng).abs()) * 10.0,
            }
        })
        .collect();

    let zipf = ZipfSampler::new(cfg.n_entities, cfg.zipf_exponent);
    let schema = Schema::new(vec!["name", "address", "pin"]);
    let mut records = Vec::with_capacity(cfg.n_records);
    let mut labels = Vec::with_capacity(cfg.n_records);

    for _ in 0..cfg.n_records {
        let e = zipf.sample(&mut rng);
        let ent = &entities[e];
        let mut name = ent.name.clone();
        if rng.random_bool(0.2) {
            name = noise::initialize_words(&mut rng, &name, 0.7);
        }
        if rng.random_bool(cfg.p_typo) {
            name = noise::typo(&mut rng, &name);
        }
        let mut address = ent.address.clone();
        if rng.random_bool(cfg.p_drop_word) {
            address = noise::drop_word(&mut rng, &address);
        }
        if rng.random_bool(cfg.p_filler) {
            let f = FILLERS[rng.random_range(0..FILLERS.len())];
            address = format!("{f} {address}");
        }
        if rng.random_bool(cfg.p_typo) {
            address = noise::typo(&mut rng, &address);
        }
        // Per-asset worth around the entity's base worth.
        let weight = (ent.worth * (0.5 + rng.random::<f64>())).max(0.1);
        records.push(Record::with_weight(
            vec![name, address, ent.pin.clone()],
            weight,
        ));
        labels.push(e as u32);
    }
    Dataset::with_truth(schema, records, Partition::from_labels(labels))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> AddressConfig {
        AddressConfig {
            n_entities: 60,
            n_records: 250,
            ..AddressConfig::default()
        }
    }

    #[test]
    fn basic_shape() {
        let d = generate_addresses(&small_cfg());
        assert_eq!(d.len(), 250);
        assert_eq!(d.schema().arity(), 3);
        assert!(d.records().iter().all(|r| r.weight() > 0.0));
    }

    #[test]
    fn skewed_groups() {
        let d = generate_addresses(&small_cfg());
        let sizes = d.truth().unwrap().group_sizes();
        assert!(sizes[0] > 1);
        assert!(sizes[0] >= sizes[sizes.len() - 1]);
    }

    #[test]
    fn deterministic() {
        let a = generate_addresses(&small_cfg());
        let b = generate_addresses(&small_cfg());
        assert_eq!(a.records()[3], b.records()[3]);
    }
}
