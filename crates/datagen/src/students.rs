//! Synthetic students dataset (paper §6.1.2 substitute).
//!
//! Each entity is a pupil; each record is one exam paper with fields
//! `name, birthdate, class, school, paper`. Error channels follow the
//! paper's description: missing spaces inside names, the current (exam)
//! date entered instead of the birth date, plus occasional typos. School
//! and class codes "are believed to be correct" and stay clean. Record
//! weight is the paper's synthetic score: a per-entity Gaussian
//! proficiency drives the marks of all of the pupil's papers.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use topk_records::{Dataset, Partition, Record, Schema};

use crate::names::person_name;
use crate::noise;
use crate::zipf::ZipfSampler;

/// Configuration for [`generate_students`].
#[derive(Debug, Clone)]
pub struct StudentConfig {
    /// Number of pupils.
    pub n_students: usize,
    /// Total number of exam-paper records.
    pub n_records: usize,
    /// Zipf exponent for papers-per-pupil skew (mild).
    pub zipf_exponent: f64,
    /// Probability the name loses a space.
    pub p_drop_space: f64,
    /// Probability of a typo in the name.
    pub p_typo: f64,
    /// Probability the birth date is replaced by the exam date.
    pub p_wrong_date: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for StudentConfig {
    fn default() -> Self {
        StudentConfig {
            n_students: 12_000,
            n_records: 40_000,
            zipf_exponent: 0.5,
            p_drop_space: 0.18,
            p_typo: 0.06,
            p_wrong_date: 0.12,
            seed: 0x57D1,
        }
    }
}

struct Student {
    name: String,
    birthdate: String,
    class: String,
    school: String,
    proficiency: f64,
}

/// Generate the students dataset. Schema: `name, birthdate, class,
/// school, paper`; weight = marks; truth = pupil entity.
pub fn generate_students(cfg: &StudentConfig) -> Dataset {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let students: Vec<Student> = (0..cfg.n_students)
        .map(|i| {
            let year = 1994 + rng.random_range(0..6u32);
            let month = 1 + rng.random_range(0..12u32);
            let day = 1 + rng.random_range(0..28u32);
            Student {
                name: person_name(i as u64, 400, 2500),
                birthdate: format!("{year:04}{month:02}{day:02}"),
                class: format!("c{}", 1 + rng.random_range(0..7u32)),
                school: format!("sch{}", rng.random_range(0..(cfg.n_students / 60).max(2))),
                proficiency: noise::gaussian(&mut rng),
            }
        })
        .collect();

    let zipf = ZipfSampler::new(cfg.n_students, cfg.zipf_exponent);
    let schema = Schema::new(vec!["name", "birthdate", "class", "school", "paper"]);
    let mut records = Vec::with_capacity(cfg.n_records);
    let mut labels = Vec::with_capacity(cfg.n_records);

    for _ in 0..cfg.n_records {
        let s = zipf.sample(&mut rng);
        let st = &students[s];
        let mut name = st.name.clone();
        if rng.random_bool(cfg.p_drop_space) {
            name = noise::drop_space(&mut rng, &name);
        }
        if rng.random_bool(cfg.p_typo) {
            name = noise::typo(&mut rng, &name);
        }
        let birthdate = if rng.random_bool(cfg.p_wrong_date) {
            // "current date instead of the birth date"
            format!(
                "2008{:02}{:02}",
                1 + rng.random_range(0..12u32),
                1 + rng.random_range(0..28u32)
            )
        } else {
            st.birthdate.clone()
        };
        let paper = format!("p{}", rng.random_range(0..40u32));
        // Marks: 50 + 15 * proficiency + small per-paper noise, in [0,100].
        let marks =
            (50.0 + 15.0 * st.proficiency + 5.0 * noise::gaussian(&mut rng)).clamp(0.0, 100.0);
        records.push(Record::with_weight(
            vec![name, birthdate, st.class.clone(), st.school.clone(), paper],
            marks,
        ));
        labels.push(s as u32);
    }
    Dataset::with_truth(schema, records, Partition::from_labels(labels))
}

#[cfg(test)]
mod tests {
    use super::*;
    use topk_records::FieldId;

    fn small_cfg() -> StudentConfig {
        StudentConfig {
            n_students: 80,
            n_records: 400,
            ..StudentConfig::default()
        }
    }

    #[test]
    fn basic_shape() {
        let d = generate_students(&small_cfg());
        assert_eq!(d.len(), 400);
        assert_eq!(d.schema().arity(), 5);
        assert_eq!(d.truth().unwrap().len(), 400);
    }

    #[test]
    fn weights_are_marks() {
        let d = generate_students(&small_cfg());
        for r in d.records() {
            assert!((0.0..=100.0).contains(&r.weight()));
        }
        // not all identical
        let w0 = d.records()[0].weight();
        assert!(d.records().iter().any(|r| (r.weight() - w0).abs() > 1e-9));
    }

    #[test]
    fn clean_fields_stay_clean() {
        let d = generate_students(&small_cfg());
        let t = d.truth().unwrap();
        // all records of one entity share class and school exactly
        let groups = t.groups();
        let g = groups
            .iter()
            .find(|g| g.len() >= 3)
            .expect("a repeated pupil");
        let class0 = d.records()[g[0]].field(FieldId(2));
        let school0 = d.records()[g[0]].field(FieldId(3));
        for &i in g {
            assert_eq!(d.records()[i].field(FieldId(2)), class0);
            assert_eq!(d.records()[i].field(FieldId(3)), school0);
        }
    }

    #[test]
    fn deterministic() {
        let a = generate_students(&small_cfg());
        let b = generate_students(&small_cfg());
        assert_eq!(a.records()[7], b.records()[7]);
    }
}
