//! Deterministic synthetic vocabularies: person names, title words,
//! street/city names.
//!
//! Names are composed from syllable inventories, giving a realistic mix of
//! short common surnames and long rare ones without shipping any real
//! personal data. Generation is a pure function of the index, so every
//! entity keeps the same clean form across runs.

/// Syllables used to compose name-like words. The inventories are kept
/// deliberately large: 3-gram blocking predicates lean on gram diversity,
/// and real name corpora have far more distinct trigrams than a small
/// syllable set would produce.
const ONSETS: &[&str] = &[
    "ba", "ka", "de", "ma", "sa", "ra", "ta", "na", "pa", "ga", "ha", "ja", "la", "va", "sha",
    "cha", "pra", "kri", "su", "mo", "ne", "vi", "ro", "be", "do", "fe", "gu", "hi", "jo", "ke",
    "bhu", "dra", "fra", "gla", "hru", "jya", "kla", "lwa", "mya", "nra", "pwa", "qui", "rhe",
    "sto", "tri", "uva", "vle", "wri", "xia", "yve", "zor", "ble", "cre", "dwi", "fyo", "gne",
    "hya", "ive", "klu", "lho",
];
const MIDS: &[&str] = &[
    "ri", "la", "mi", "no", "sa", "ve", "ta", "ku", "re", "li", "ma", "dhu", "ni", "ru", "wa",
    "yo", "za", "pe", "go", "che", "bi", "co", "du", "fe", "gy", "hu", "ji", "ko", "lu", "me",
    "nya", "osi", "pra", "qua", "rko", "ste", "tva", "ulo", "vni", "wex",
];
const CODAS: &[&str] = &[
    "n", "sh", "m", "r", "l", "t", "k", "d", "s", "v", "gi", "ni", "ta", "ne", "ya", "an", "ar",
    "al", "at", "wal", "ber", "cki", "dze", "ffe", "ghy", "hne", "itz", "jor", "kov", "lde", "mbe",
    "nov", "oss", "pul", "quet", "rth", "sky", "tte", "urn", "vic",
];

/// Deterministic pseudo-random mixing of an index (splitmix64).
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A name-like word for index `i` within namespace `ns` (namespaces keep
/// first names, last names, streets, etc. from colliding).
pub fn word(ns: u64, i: u64) -> String {
    let h = mix(ns.wrapping_mul(0x51ed_270b).wrapping_add(i));
    let onset = ONSETS[(h % ONSETS.len() as u64) as usize];
    let mid = MIDS[((h >> 8) % MIDS.len() as u64) as usize];
    let coda = CODAS[((h >> 16) % CODAS.len() as u64) as usize];
    // Short words for low indices (common names), longer for high.
    if i < 40 {
        format!("{onset}{coda}")
    } else if (h >> 24) % 3 == 0 {
        format!("{onset}{mid}{mid}{coda}")
    } else {
        format!("{onset}{mid}{coda}")
    }
}

/// Namespaces for the different vocabularies.
pub mod ns {
    /// First names.
    pub const FIRST: u64 = 1;
    /// Last names.
    pub const LAST: u64 = 2;
    /// Title / topic words.
    pub const TITLE: u64 = 3;
    /// Street names.
    pub const STREET: u64 = 4;
    /// City / locality names.
    pub const LOCALITY: u64 = 5;
    /// Restaurant names.
    pub const RESTAURANT: u64 = 6;
    /// Middle names.
    pub const MIDDLE: u64 = 7;
}

/// Full person name `"first [middle] last"` for entity `i` drawn from
/// pools of the given sizes. About a third of people get a middle name.
/// Surnames are disambiguated with the entity index so that distinct
/// entities rarely share an exact surname (which keeps the rare-surname
/// sufficient predicates sound on generated data).
pub fn person_name(i: u64, first_pool: u64, last_pool: u64) -> String {
    let h = mix(i.wrapping_add(0xabcd));
    let first = word(ns::FIRST, h % first_pool);
    let last = word(ns::LAST, ((h >> 16) % last_pool).wrapping_add(i << 20));
    if (h >> 32) % 3 == 0 {
        let middle = word(ns::MIDDLE, (h >> 40) % first_pool);
        format!("{first} {middle} {last}")
    } else {
        format!("{first} {last}")
    }
}

/// A title of `len` topic words for seed `i`.
pub fn title(i: u64, len: usize) -> String {
    let mut parts = Vec::with_capacity(len);
    for k in 0..len {
        let h = mix(i.wrapping_mul(31).wrapping_add(k as u64));
        parts.push(word(ns::TITLE, h % 3000));
    }
    parts.join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(word(ns::FIRST, 7), word(ns::FIRST, 7));
        assert_eq!(person_name(9, 100, 200), person_name(9, 100, 200));
    }

    #[test]
    fn namespaces_differ() {
        assert_ne!(word(ns::FIRST, 7), word(ns::LAST, 7));
    }

    #[test]
    fn names_have_two_or_three_parts() {
        for i in 0..200 {
            let n = person_name(i, 50, 100);
            let parts = n.split_whitespace().count();
            assert!(parts == 2 || parts == 3, "{n}");
        }
    }

    #[test]
    fn pool_diversity() {
        let mut distinct: Vec<String> = (0..500).map(|i| word(ns::LAST, i)).collect();
        distinct.sort();
        distinct.dedup();
        // Syllable collisions are fine but the pool must be reasonably rich.
        assert!(distinct.len() > 250, "only {} distinct", distinct.len());
    }

    #[test]
    fn titles_have_requested_length() {
        assert_eq!(title(5, 4).split_whitespace().count(), 4);
    }
}
