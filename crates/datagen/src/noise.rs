//! Noise channels applied to clean entity strings to produce imprecise
//! duplicate mentions.
//!
//! Each channel models an error mode the paper calls out: typos, initials
//! instead of full first names (citations §6.1.1), missing spaces between
//! name parts (students §6.1.2), dropped/reordered tokens (addresses
//! §6.1.3), and wrong dates.

use rand::{Rng, RngExt};

/// Apply a single random character typo (substitute / delete / insert /
/// transpose) to an ASCII-ish lowercase word. Empty strings pass through.
pub fn typo<R: Rng + ?Sized>(rng: &mut R, s: &str) -> String {
    let chars: Vec<char> = s.chars().collect();
    if chars.is_empty() {
        return String::new();
    }
    let mut out = chars.clone();
    let pos = rng.random_range(0..out.len());
    match rng.random_range(0..4u8) {
        0 => {
            // substitute
            out[pos] = random_letter(rng);
        }
        1 => {
            // delete (keep at least one char)
            if out.len() > 1 {
                out.remove(pos);
            }
        }
        2 => {
            // insert
            out.insert(pos, random_letter(rng));
        }
        _ => {
            // transpose with next
            if pos + 1 < out.len() {
                out.swap(pos, pos + 1);
            } else if out.len() >= 2 {
                let l = out.len();
                out.swap(l - 2, l - 1);
            }
        }
    }
    out.into_iter().collect()
}

fn random_letter<R: Rng + ?Sized>(rng: &mut R) -> char {
    (b'a' + rng.random_range(0..26u8)) as char
}

/// Replace every word except the last by its initial with probability
/// `p_each` — "s sarawagi" style author mentions.
pub fn initialize_words<R: Rng + ?Sized>(rng: &mut R, s: &str, p_each: f64) -> String {
    let words: Vec<&str> = s.split_whitespace().collect();
    if words.len() <= 1 {
        return s.to_string();
    }
    let mut out: Vec<String> = Vec::with_capacity(words.len());
    for (i, w) in words.iter().enumerate() {
        if i + 1 < words.len() && rng.random_bool(p_each) {
            out.push(w.chars().take(1).collect());
        } else {
            out.push((*w).to_string());
        }
    }
    out.join(" ")
}

/// Remove the space between one random adjacent word pair — the students
/// dataset's "missing space between different parts of the name".
pub fn drop_space<R: Rng + ?Sized>(rng: &mut R, s: &str) -> String {
    let words: Vec<&str> = s.split_whitespace().collect();
    if words.len() <= 1 {
        return s.to_string();
    }
    let k = rng.random_range(0..words.len() - 1);
    let mut out = Vec::with_capacity(words.len() - 1);
    for (i, w) in words.iter().enumerate() {
        if i == k {
            out.push(format!("{}{}", w, words[i + 1]));
        } else if i != k + 1 {
            out.push((*w).to_string());
        }
    }
    out.join(" ")
}

/// Drop one random word (keeps at least one).
pub fn drop_word<R: Rng + ?Sized>(rng: &mut R, s: &str) -> String {
    let mut words: Vec<&str> = s.split_whitespace().collect();
    if words.len() <= 1 {
        return s.to_string();
    }
    let k = rng.random_range(0..words.len());
    words.remove(k);
    words.join(" ")
}

/// Swap one random adjacent word pair (name-part reordering).
pub fn swap_words<R: Rng + ?Sized>(rng: &mut R, s: &str) -> String {
    let mut words: Vec<&str> = s.split_whitespace().collect();
    if words.len() <= 1 {
        return s.to_string();
    }
    let k = rng.random_range(0..words.len() - 1);
    words.swap(k, k + 1);
    words.join(" ")
}

/// With probability `p`, apply `f` to `s`; otherwise return `s` unchanged.
pub fn maybe<R: Rng + ?Sized>(
    rng: &mut R,
    p: f64,
    s: String,
    f: impl FnOnce(&mut R, &str) -> String,
) -> String {
    if rng.random_bool(p) {
        f(rng, &s)
    } else {
        s
    }
}

/// A standard-normal sample via Box-Muller (rand_distr is outside the
/// allowed crate set).
pub fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.random();
        let u2: f64 = rng.random();
        if u1 > f64::EPSILON {
            return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn typo_changes_or_keeps_length_close() {
        let mut r = rng();
        for _ in 0..100 {
            let t = typo(&mut r, "sarawagi");
            assert!(!t.is_empty());
            assert!((t.len() as i64 - 8).abs() <= 1);
        }
        assert_eq!(typo(&mut r, ""), "");
        assert!(!typo(&mut r, "a").is_empty());
    }

    #[test]
    fn initialize_keeps_last_word() {
        let mut r = rng();
        for _ in 0..50 {
            let s = initialize_words(&mut r, "sunita kumar sarawagi", 1.0);
            assert_eq!(s, "s k sarawagi");
        }
        assert_eq!(initialize_words(&mut r, "single", 1.0), "single");
    }

    #[test]
    fn drop_space_merges_one_pair() {
        let mut r = rng();
        let s = drop_space(&mut r, "a b c");
        assert_eq!(s.split_whitespace().count(), 2);
        assert_eq!(s.replace(' ', ""), "abc");
        assert_eq!(drop_space(&mut r, "one"), "one");
    }

    #[test]
    fn drop_word_keeps_rest() {
        let mut r = rng();
        let s = drop_word(&mut r, "a b c");
        assert_eq!(s.split_whitespace().count(), 2);
        assert_eq!(drop_word(&mut r, "only"), "only");
    }

    #[test]
    fn swap_words_permutes() {
        let mut r = rng();
        let s = swap_words(&mut r, "a b");
        assert_eq!(s, "b a");
    }

    #[test]
    fn gaussian_moments() {
        let mut r = rng();
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| gaussian(&mut r)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn maybe_applies_probabilistically() {
        let mut r = rng();
        let always = maybe(&mut r, 1.0, "ab".to_string(), typo);
        let never = maybe(&mut r, 0.0, "ab".to_string(), typo);
        assert_eq!(never, "ab");
        let _ = always; // only checks it runs
    }
}
