//! Synthetic web-mention dataset — the paper's "web query answering"
//! scenario ("the result of the query is expected to be a single entity
//! where each entity's rank is derived from its frequency of
//! occurrences") and the news-feed organization tracking use case.
//!
//! Entities are organizations; mentions render the organization name in
//! the styles actually seen on the web: the full name, the acronym
//! ("IIT Bombay" → "iitb"), truncations that drop the legal-form words,
//! and the usual typo channel. Each mention carries a `context` field of
//! topic words with entity-specific vocabulary, which is what similarity
//! scorers key on when the surface form is an acronym.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use topk_records::{Dataset, Partition, Record, Schema};

use crate::names::{ns, word};
use crate::noise;
use crate::zipf::ZipfSampler;

/// Configuration for [`generate_web_mentions`].
#[derive(Debug, Clone)]
pub struct WebConfig {
    /// Number of organizations.
    pub n_orgs: usize,
    /// Number of mention records.
    pub n_records: usize,
    /// Zipf exponent of organization popularity.
    pub zipf_exponent: f64,
    /// Probability a mention is the acronym.
    pub p_acronym: f64,
    /// Probability a mention drops the legal-form word.
    pub p_truncate: f64,
    /// Probability of a typo.
    pub p_typo: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WebConfig {
    fn default() -> Self {
        WebConfig {
            n_orgs: 2_000,
            n_records: 30_000,
            zipf_exponent: 1.1,
            p_acronym: 0.25,
            p_truncate: 0.2,
            p_typo: 0.05,
            seed: 0x3EB5,
        }
    }
}

const LEGAL_FORMS: &[&str] = &[
    "inc",
    "ltd",
    "corp",
    "labs",
    "group",
    "systems",
    "institute",
];

struct Org {
    full: String,
    acronym: String,
    topics: Vec<String>,
}

fn make_org(i: u64) -> Org {
    let parts = 2 + (i % 2) as usize;
    let mut words: Vec<String> = (0..parts)
        .map(|k| word(ns::RESTAURANT, i * 7 + k as u64 * 131 + 40))
        .collect();
    let legal = LEGAL_FORMS[(i % LEGAL_FORMS.len() as u64) as usize];
    words.push(legal.to_string());
    let acronym: String = words.iter().filter_map(|w| w.chars().next()).collect();
    let topics = (0..6)
        .map(|k| word(ns::TITLE, i * 13 + k * 377 + 99))
        .collect();
    Org {
        full: words.join(" "),
        acronym,
        topics,
    }
}

/// Generate the web-mention dataset. Schema: `name, context`; weight 1.0
/// (occurrence counting); truth = organization.
pub fn generate_web_mentions(cfg: &WebConfig) -> Dataset {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let orgs: Vec<Org> = (0..cfg.n_orgs as u64).map(make_org).collect();
    let zipf = ZipfSampler::new(cfg.n_orgs, cfg.zipf_exponent);
    let schema = Schema::new(vec!["name", "context"]);
    let mut records = Vec::with_capacity(cfg.n_records);
    let mut labels = Vec::with_capacity(cfg.n_records);
    for _ in 0..cfg.n_records {
        let e = zipf.sample(&mut rng);
        let org = &orgs[e];
        let mut name = if rng.random_bool(cfg.p_acronym) {
            org.acronym.clone()
        } else if rng.random_bool(cfg.p_truncate) {
            // drop the legal-form word
            let mut ws: Vec<&str> = org.full.split_whitespace().collect();
            ws.pop();
            ws.join(" ")
        } else {
            org.full.clone()
        };
        if rng.random_bool(cfg.p_typo) {
            name = noise::typo(&mut rng, &name);
        }
        // 2-4 topic words from the org's vocabulary plus one random word.
        let mut ctx: Vec<&str> = Vec::new();
        for _ in 0..rng.random_range(2..5usize) {
            ctx.push(&org.topics[rng.random_range(0..org.topics.len())]);
        }
        let filler = word(ns::TITLE, rng.random_range(0..5000u64));
        let context = format!("{} {}", ctx.join(" "), filler);
        records.push(Record::new(vec![name, context]));
        labels.push(e as u32);
    }
    Dataset::with_truth(schema, records, Partition::from_labels(labels))
}

#[cfg(test)]
mod tests {
    use super::*;
    use topk_records::FieldId;

    fn small() -> WebConfig {
        WebConfig {
            n_orgs: 40,
            n_records: 300,
            ..Default::default()
        }
    }

    #[test]
    fn shape_and_truth() {
        let d = generate_web_mentions(&small());
        assert_eq!(d.len(), 300);
        assert_eq!(d.schema().arity(), 2);
        assert_eq!(d.truth().unwrap().len(), 300);
    }

    #[test]
    fn acronyms_present_for_popular_orgs() {
        let d = generate_web_mentions(&small());
        let truth = d.truth().unwrap();
        let big = &truth.groups()[0];
        let names: std::collections::HashSet<&str> = big
            .iter()
            .map(|&i| d.records()[i].field(FieldId(0)))
            .collect();
        // popular org has enough mentions that both full and short forms
        // appear
        assert!(names.len() >= 2, "variant mention forms expected");
        let has_short = names.iter().any(|n| !n.contains(' '));
        let has_long = names.iter().any(|n| n.contains(' '));
        assert!(has_short && has_long, "names: {names:?}");
    }

    #[test]
    fn contexts_share_topics_within_entity() {
        let d = generate_web_mentions(&small());
        let truth = d.truth().unwrap();
        let big = &truth.groups()[0];
        let a = topk_text::tokenize::word_set(d.records()[big[0]].field(FieldId(1)));
        let b = topk_text::tokenize::word_set(d.records()[big[1]].field(FieldId(1)));
        // topics come from a 6-word pool; overlap is likely but not
        // certain for a single pair — check across a few pairs
        let mut found = a.intersection_size(&b) >= 1;
        for w in big.windows(2).take(10) {
            let x = topk_text::tokenize::word_set(d.records()[w[0]].field(FieldId(1)));
            let y = topk_text::tokenize::word_set(d.records()[w[1]].field(FieldId(1)));
            found |= x.intersection_size(&y) >= 1;
        }
        assert!(found, "entity contexts never overlap");
    }

    #[test]
    fn deterministic() {
        let a = generate_web_mentions(&small());
        let b = generate_web_mentions(&small());
        assert_eq!(a.records()[9], b.records()[9]);
    }
}
