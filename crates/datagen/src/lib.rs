#![warn(missing_docs)]

//! Synthetic dirty-duplicate dataset generators.
//!
//! The paper evaluates on proprietary data (a Citeseer crawl, a primary
//! school exam database, a Pune city address list) plus small labeled
//! benchmarks. None of those are redistributable, so this crate generates
//! synthetic equivalents with controlled noise channels and full ground
//! truth — see DESIGN.md §4 for the substitution argument.
//!
//! Every generator is deterministic given its [`rand::SeedableRng`] seed.

pub mod addresses;
pub mod citations;
pub mod names;
pub mod noise;
pub mod products;
pub mod small;
pub mod students;
pub mod web;
pub mod zipf;

pub use addresses::{generate_addresses, AddressConfig};
pub use citations::{generate_citations, CitationConfig};
pub use products::{generate_products, ProductConfig};
pub use small::{small_dataset, SmallDatasetKind};
pub use students::{generate_students, StudentConfig};
pub use web::{generate_web_mentions, WebConfig};
pub use zipf::ZipfSampler;
