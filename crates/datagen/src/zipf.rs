//! Zipfian sampling of entity ids.
//!
//! Real mention-frequency distributions are heavily skewed ("real-life
//! distributions are skewed", paper §4.4) — a handful of entities account
//! for most mentions. All generators draw entity ids from this sampler.

use rand::{Rng, RngExt};

/// Samples ids `0..n` with `P(i) ∝ 1/(i+1)^s` via an inverse-CDF table.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Build a sampler over `n` ids with exponent `s ≥ 0` (`s = 0` is
    /// uniform; `s ≈ 1` is classic Zipf).
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "ZipfSampler needs at least one id");
        assert!(
            s >= 0.0 && s.is_finite(),
            "exponent must be finite and >= 0"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        ZipfSampler { cdf }
    }

    /// Number of ids.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True when only one id exists (never, by construction, zero).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draw one id.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.random();
        match self.cdf.binary_search_by(|c| c.total_cmp(&u)) {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// Probability of id `i`.
    pub fn prob(&self, i: usize) -> f64 {
        if i == 0 {
            self.cdf[0]
        } else {
            self.cdf[i] - self.cdf[i - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn skew_favors_low_ids() {
        let z = ZipfSampler::new(100, 1.2);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = vec![0usize; 100];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[0] > counts[50]);
        // everything in range
        assert_eq!(counts.iter().sum::<usize>(), 20_000);
    }

    #[test]
    fn uniform_when_s_zero() {
        let z = ZipfSampler::new(4, 0.0);
        for i in 0..4 {
            assert!((z.prob(i) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn probs_sum_to_one() {
        let z = ZipfSampler::new(17, 0.8);
        let total: f64 = (0..17).map(|i| z.prob(i)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert_eq!(z.len(), 17);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_ids_panics() {
        ZipfSampler::new(0, 1.0);
    }
}
