//! Synthetic citation dataset (paper §6.1.1 substitute).
//!
//! Models the Citeseer author-mention workload: every record is one
//! author-citation pair with fields `author`, `coauthors`, `title`,
//! `year`. Author popularity is Zipf-skewed; author mentions pass through
//! the initials / typo / reorder noise channels the paper's predicates are
//! designed around. Ground truth labels records by author entity.

use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};

use topk_records::{Dataset, Partition, Record, Schema};

use crate::names::{person_name, title};
use crate::noise;
use crate::zipf::ZipfSampler;

/// Configuration for [`generate_citations`].
#[derive(Debug, Clone)]
pub struct CitationConfig {
    /// Number of distinct author entities.
    pub n_authors: usize,
    /// Number of citations; each yields one record per author on it.
    pub n_citations: usize,
    /// Zipf exponent of author popularity (≈1 gives the strong skew the
    /// paper relies on).
    pub zipf_exponent: f64,
    /// Probability that a mention abbreviates non-final name words to
    /// initials.
    pub p_initialize: f64,
    /// Probability of a character typo in the author mention.
    pub p_typo: f64,
    /// Probability of swapping adjacent words of the author mention.
    pub p_swap: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CitationConfig {
    fn default() -> Self {
        CitationConfig {
            n_authors: 4000,
            n_citations: 24_000,
            zipf_exponent: 1.05,
            p_initialize: 0.35,
            p_typo: 0.03,
            p_swap: 0.05,
            seed: 0xC17A,
        }
    }
}

/// Noisy rendering of author `entity`'s clean name.
fn mention<R: Rng + ?Sized>(rng: &mut R, clean: &str, cfg: &CitationConfig) -> String {
    let mut s = clean.to_string();
    if rng.random_bool(cfg.p_initialize) {
        s = noise::initialize_words(rng, &s, 0.8);
    }
    if rng.random_bool(cfg.p_typo) {
        s = noise::typo(rng, &s);
    }
    if rng.random_bool(cfg.p_swap) {
        s = noise::swap_words(rng, &s);
    }
    s
}

/// Generate the citation dataset. Schema: `author, coauthors, title,
/// year`; one record per (citation, author); weight 1.0; truth = author
/// entity.
pub fn generate_citations(cfg: &CitationConfig) -> Dataset {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let zipf = ZipfSampler::new(cfg.n_authors, cfg.zipf_exponent);
    let clean: Vec<String> = (0..cfg.n_authors)
        .map(|i| person_name(i as u64, 300, (cfg.n_authors / 2).max(50) as u64))
        .collect();

    let schema = Schema::new(vec!["author", "coauthors", "title", "year"]);
    let mut records = Vec::new();
    let mut labels = Vec::new();

    // Collaborator cliques: co-authors of a paper come mostly from the
    // first author's research circle, as in real bibliographies. This is
    // what gives the S2 predicate ("three common co-author words") its
    // signal.
    let circle = |a: usize, k: u64| -> usize {
        let h = a as u64 * 0x9e37_79b9 + k * 0x85eb_ca6b;
        let span = 24usize.min(cfg.n_authors.saturating_sub(1)).max(1);
        (a + 1 + (h % span as u64) as usize) % cfg.n_authors
    };

    for c in 0..cfg.n_citations {
        // 1-4 distinct authors per citation (average ≈ the paper's 3 would
        // inflate record count; 1-4 keeps the ratio configurable).
        let n_auth = 1 + rng.random_range(0..4usize).min(rng.random_range(0..4usize));
        let first = zipf.sample(&mut rng);
        let mut authors: Vec<usize> = vec![first];
        for _ in 1..n_auth {
            // 80% from the first author's circle, 20% anyone.
            let a = if rng.random_bool(0.8) {
                circle(first, rng.random_range(0..6u64))
            } else {
                zipf.sample(&mut rng)
            };
            if !authors.contains(&a) {
                authors.push(a);
            }
        }
        let t = title(c as u64, 3 + rng.random_range(0..5usize));
        let year = format!("{}", 1980 + rng.random_range(0..30u32));
        // The paper's Citeseer records carry a count field ("the number
        // of citations that [the record] summarizes") and the query sums
        // those counts. Citation counts are heavy-tailed; a bounded
        // Pareto sample reproduces that weight concentration, without
        // which the collapsed-group weights (the M column of Figure 2)
        // would be far flatter than the paper's.
        let u: f64 = rng.random::<f64>().max(1e-4);
        let count = (1.0 / u.powf(0.7)).min(300.0).floor().max(1.0);
        for (k, &a) in authors.iter().enumerate() {
            let coauthors: Vec<String> = authors
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != k)
                .map(|(_, &b)| mention(&mut rng, &clean[b], cfg))
                .collect();
            records.push(Record::with_weight(
                vec![
                    mention(&mut rng, &clean[a], cfg),
                    coauthors.join(" "),
                    t.clone(),
                    year.clone(),
                ],
                count,
            ));
            labels.push(a as u32);
        }
    }
    Dataset::with_truth(schema, records, Partition::from_labels(labels))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> CitationConfig {
        CitationConfig {
            n_authors: 50,
            n_citations: 300,
            ..CitationConfig::default()
        }
    }

    #[test]
    fn generates_records_with_truth() {
        let d = generate_citations(&small_cfg());
        assert!(d.len() >= 300, "at least one record per citation");
        assert_eq!(d.schema().arity(), 4);
        let t = d.truth().unwrap();
        assert_eq!(t.len(), d.len());
        // Zipf head: largest group clearly dominates the median group.
        let sizes = t.group_sizes();
        assert!(sizes[0] >= 5 * sizes[sizes.len() / 2].max(1) / 2);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = generate_citations(&small_cfg());
        let b = generate_citations(&small_cfg());
        assert_eq!(a.len(), b.len());
        assert_eq!(a.records()[0], b.records()[0]);
    }

    #[test]
    fn mentions_of_same_author_vary_but_relate() {
        let d = generate_citations(&small_cfg());
        let t = d.truth().unwrap();
        let groups = t.groups();
        let big = &groups[0];
        let names: std::collections::HashSet<&str> = big
            .iter()
            .map(|&i| d.records()[i].field(topk_records::FieldId(0)))
            .collect();
        assert!(names.len() > 1, "noise should create variant mentions");
    }
}
