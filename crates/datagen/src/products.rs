//! Synthetic product-offer dataset — the comparison-shopping record
//! linkage scenario of the paper's reference \[7\] (Bilenko et al.,
//! "Adaptive product normalization"). The TopK query: which products
//! have the most offers?
//!
//! Entities are products (`brand + model + attributes`); records are
//! merchant offers whose titles mangle the model number ("xk-240" /
//! "xk 240" / "xk240"), drop or reorder attribute words, and occasionally
//! typo. Weight is the offer's review count (heavy-tailed).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use topk_records::{Dataset, Partition, Record, Schema};

use crate::names::{ns, word};
use crate::noise;
use crate::zipf::ZipfSampler;

/// Configuration for [`generate_products`].
#[derive(Debug, Clone)]
pub struct ProductConfig {
    /// Number of products.
    pub n_products: usize,
    /// Number of offer records.
    pub n_records: usize,
    /// Zipf exponent of product popularity.
    pub zipf_exponent: f64,
    /// Probability the model number is re-segmented ("xk240" ↔ "xk 240").
    pub p_resegment: f64,
    /// Probability an attribute word is dropped.
    pub p_drop_attr: f64,
    /// Probability of a typo in the title.
    pub p_typo: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ProductConfig {
    fn default() -> Self {
        ProductConfig {
            n_products: 3_000,
            n_records: 30_000,
            zipf_exponent: 1.0,
            p_resegment: 0.3,
            p_drop_attr: 0.25,
            p_typo: 0.04,
            seed: 0x9B0D,
        }
    }
}

const ATTRIBUTES: &[&str] = &[
    "red", "black", "silver", "pro", "max", "mini", "wireless", "usb", "hd", "portable",
];

struct Product {
    brand: String,
    model: String, // e.g. "xk240"
    attrs: Vec<&'static str>,
}

fn make_product(i: u64) -> Product {
    let brand = word(ns::RESTAURANT, 7_000 + i % 120);
    let letters: String = word(ns::LAST, 9_000 + i * 3).chars().take(2).collect();
    let number = 100 + (i * 37) % 900;
    let model = format!("{letters}{number}");
    let attrs = (0..2 + (i % 2) as usize)
        .map(|k| ATTRIBUTES[((i * 13 + k as u64 * 7) % ATTRIBUTES.len() as u64) as usize])
        .collect();
    Product {
        brand,
        model,
        attrs,
    }
}

/// Generate the product-offer dataset. Schema: `title, merchant`; weight
/// = review count; truth = product entity.
pub fn generate_products(cfg: &ProductConfig) -> Dataset {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let products: Vec<Product> = (0..cfg.n_products as u64).map(make_product).collect();
    let zipf = ZipfSampler::new(cfg.n_products, cfg.zipf_exponent);
    let schema = Schema::new(vec!["title", "merchant"]);
    let mut records = Vec::with_capacity(cfg.n_records);
    let mut labels = Vec::with_capacity(cfg.n_records);
    for _ in 0..cfg.n_records {
        let e = zipf.sample(&mut rng);
        let p = &products[e];
        // model rendering
        let model = if rng.random_bool(cfg.p_resegment) {
            // split letters and digits: "xk240" -> "xk 240"
            let split: usize = p.model.chars().take_while(|c| c.is_alphabetic()).count();
            format!("{} {}", &p.model[..split], &p.model[split..])
        } else {
            p.model.clone()
        };
        // attributes: drop some, shuffle order
        let mut attrs: Vec<&str> = p
            .attrs
            .iter()
            .copied()
            .filter(|_| !rng.random_bool(cfg.p_drop_attr))
            .collect();
        if attrs.len() >= 2 && rng.random_bool(0.5) {
            attrs.swap(0, 1);
        }
        let mut title = format!("{} {} {}", p.brand, model, attrs.join(" "))
            .trim()
            .to_string();
        if rng.random_bool(cfg.p_typo) {
            title = noise::typo(&mut rng, &title);
        }
        let merchant = format!("shop{}", rng.random_range(0..40u32));
        // heavy-tailed review count
        let u: f64 = rng.random::<f64>().max(1e-4);
        let reviews = (1.0 / u.powf(0.6)).min(500.0).floor().max(1.0);
        records.push(Record::with_weight(vec![title, merchant], reviews));
        labels.push(e as u32);
    }
    Dataset::with_truth(schema, records, Partition::from_labels(labels))
}

#[cfg(test)]
mod tests {
    use super::*;
    use topk_records::FieldId;

    fn small() -> ProductConfig {
        ProductConfig {
            n_products: 50,
            n_records: 400,
            ..Default::default()
        }
    }

    #[test]
    fn shape_and_truth() {
        let d = generate_products(&small());
        assert_eq!(d.len(), 400);
        assert_eq!(d.truth().unwrap().len(), 400);
        assert!(d.records().iter().all(|r| r.weight() >= 1.0));
    }

    #[test]
    fn model_resegmentation_occurs() {
        let d = generate_products(&small());
        let truth = d.truth().unwrap();
        let big = &truth.groups()[0];
        let titles: std::collections::HashSet<&str> = big
            .iter()
            .map(|&i| d.records()[i].field(FieldId(0)))
            .collect();
        // popular products appear with multiple title renderings
        assert!(titles.len() >= 2, "titles: {titles:?}");
        // squashed titles agree within the entity (brand+model survive)
        let squash = |t: &str| -> String { t.chars().filter(|c| c.is_alphanumeric()).collect() };
        let sq: std::collections::HashSet<String> = titles
            .iter()
            .map(|t| {
                // compare only the brand+model prefix (attributes vary)
                squash(t).chars().take(8).collect()
            })
            .collect();
        assert!(sq.len() <= 2, "brand+model prefix should be stable: {sq:?}");
    }

    #[test]
    fn deterministic() {
        let a = generate_products(&small());
        let b = generate_products(&small());
        assert_eq!(a.records()[5], b.records()[5]);
    }
}
