//! Pairwise clustering evaluation — the metric of the paper's Figure 7.
//!
//! Figure 7 "measure\[s\] accuracy as pairwise F1 value which treats as
//! positive any pair of records that appears in the same cluster in the
//! [exact solution], and negative otherwise."

use std::collections::HashMap;

use crate::partition::Partition;

/// Pairwise precision / recall / F1 of a candidate partition against a
/// reference partition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairwiseScores {
    /// Fraction of candidate same-cluster pairs that the reference also
    /// puts together.
    pub precision: f64,
    /// Fraction of reference same-cluster pairs recovered.
    pub recall: f64,
    /// Harmonic mean of precision and recall.
    pub f1: f64,
    /// Number of same-cluster pairs both agree on.
    pub true_positive_pairs: u64,
}

fn pairs(n: u64) -> u64 {
    n * (n - 1) / 2
}

/// Compute pairwise precision/recall/F1 of `candidate` against `reference`.
///
/// Runs in `O(n)` using the label contingency table — no pair enumeration.
/// When the reference has no positive pairs, recall (and F1) are defined as
/// 1.0 if the candidate also has none, else 0.0; symmetrically for
/// precision.
pub fn pairwise_f1(candidate: &Partition, reference: &Partition) -> PairwiseScores {
    assert_eq!(candidate.len(), reference.len(), "partition size mismatch");
    let mut cand_sizes: HashMap<u32, u64> = HashMap::new();
    let mut ref_sizes: HashMap<u32, u64> = HashMap::new();
    let mut cell: HashMap<(u32, u32), u64> = HashMap::new();
    for i in 0..candidate.len() {
        let (c, r) = (candidate.label(i), reference.label(i));
        *cand_sizes.entry(c).or_insert(0) += 1;
        *ref_sizes.entry(r).or_insert(0) += 1;
        *cell.entry((c, r)).or_insert(0) += 1;
    }
    let tp: u64 = cell.values().map(|&n| pairs(n)).sum();
    let cand_pairs: u64 = cand_sizes.values().map(|&n| pairs(n)).sum();
    let ref_pairs: u64 = ref_sizes.values().map(|&n| pairs(n)).sum();
    let precision = if cand_pairs == 0 {
        if ref_pairs == 0 {
            1.0
        } else {
            0.0
        }
    } else {
        tp as f64 / cand_pairs as f64
    };
    let recall = if ref_pairs == 0 {
        if cand_pairs == 0 {
            1.0
        } else {
            0.0
        }
    } else {
        tp as f64 / ref_pairs as f64
    };
    let f1 = if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    };
    PairwiseScores {
        precision,
        recall,
        f1,
        true_positive_pairs: tp,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_match() {
        let p = Partition::from_labels(vec![0, 0, 1, 1, 2]);
        let s = pairwise_f1(&p, &p);
        assert_eq!(s.f1, 1.0);
        assert_eq!(s.true_positive_pairs, 2);
    }

    #[test]
    fn all_singletons_vs_grouped() {
        let cand = Partition::from_labels(vec![0, 1, 2, 3]);
        let refp = Partition::from_labels(vec![0, 0, 0, 0]);
        let s = pairwise_f1(&cand, &refp);
        assert_eq!(s.recall, 0.0);
        assert_eq!(s.precision, 0.0); // no candidate pairs at all vs 6 ref pairs
        assert_eq!(s.f1, 0.0);
    }

    #[test]
    fn partial_overlap() {
        // cand: {0,1},{2,3}  ref: {0,1,2},{3}
        let cand = Partition::from_labels(vec![0, 0, 1, 1]);
        let refp = Partition::from_labels(vec![0, 0, 0, 1]);
        let s = pairwise_f1(&cand, &refp);
        // tp = 1 ({0,1}); cand pairs = 2; ref pairs = 3.
        assert!((s.precision - 0.5).abs() < 1e-12);
        assert!((s.recall - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.true_positive_pairs, 1);
    }

    #[test]
    fn both_all_singletons() {
        let p = Partition::from_labels(vec![0, 1, 2]);
        let q = Partition::from_labels(vec![5, 6, 7]);
        let s = pairwise_f1(&p, &q);
        assert_eq!(s.f1, 1.0);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn size_mismatch_panics() {
        pairwise_f1(
            &Partition::from_labels(vec![0]),
            &Partition::from_labels(vec![0, 1]),
        );
    }
}

/// B-cubed precision / recall / F1 of a candidate partition against a
/// reference — the element-centric companion to [`pairwise_f1`], standard
/// in entity-resolution evaluation (Bagga & Baldwin 1998). Less dominated
/// by the largest clusters than pairwise F1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BCubedScores {
    /// Mean, over elements, of `|cand ∩ ref| / |cand|`.
    pub precision: f64,
    /// Mean, over elements, of `|cand ∩ ref| / |ref|`.
    pub recall: f64,
    /// Harmonic mean.
    pub f1: f64,
}

/// Compute B-cubed scores in `O(n)` via the label contingency table.
pub fn bcubed(candidate: &Partition, reference: &Partition) -> BCubedScores {
    assert_eq!(candidate.len(), reference.len(), "partition size mismatch");
    let n = candidate.len();
    if n == 0 {
        return BCubedScores {
            precision: 1.0,
            recall: 1.0,
            f1: 1.0,
        };
    }
    let mut cand_sizes: HashMap<u32, f64> = HashMap::new();
    let mut ref_sizes: HashMap<u32, f64> = HashMap::new();
    let mut cell: HashMap<(u32, u32), f64> = HashMap::new();
    for i in 0..n {
        *cand_sizes.entry(candidate.label(i)).or_insert(0.0) += 1.0;
        *ref_sizes.entry(reference.label(i)).or_insert(0.0) += 1.0;
        *cell
            .entry((candidate.label(i), reference.label(i)))
            .or_insert(0.0) += 1.0;
    }
    // Each contingency cell of size m contributes m elements, each with
    // intersection m: precision share m·(m/|cand|), recall share
    // m·(m/|ref|).
    let mut precision = 0.0;
    let mut recall = 0.0;
    for (&(c, r), &m) in &cell {
        precision += m * m / cand_sizes[&c];
        recall += m * m / ref_sizes[&r];
    }
    precision /= n as f64;
    recall /= n as f64;
    let f1 = if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    };
    BCubedScores {
        precision,
        recall,
        f1,
    }
}

#[cfg(test)]
mod bcubed_tests {
    use super::*;

    #[test]
    fn perfect_match_scores_one() {
        let p = Partition::from_labels(vec![0, 0, 1, 2]);
        let s = bcubed(&p, &p);
        assert!((s.f1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn all_singletons_vs_one_cluster() {
        let cand = Partition::from_labels(vec![0, 1, 2, 3]);
        let refp = Partition::from_labels(vec![0, 0, 0, 0]);
        let s = bcubed(&cand, &refp);
        assert!((s.precision - 1.0).abs() < 1e-12, "singletons are pure");
        assert!((s.recall - 0.25).abs() < 1e-12);
    }

    #[test]
    fn hand_computed_case() {
        // cand {0,1},{2,3}; ref {0,1,2},{3}
        let cand = Partition::from_labels(vec![0, 0, 1, 1]);
        let refp = Partition::from_labels(vec![0, 0, 0, 1]);
        let s = bcubed(&cand, &refp);
        // precision: elems 0,1 -> 2/2; elem 2 -> 1/2; elem 3 -> 1/2
        assert!((s.precision - (1.0 + 1.0 + 0.5 + 0.5) / 4.0).abs() < 1e-12);
        // recall: elems 0,1 -> 2/3; elem 2 -> 1/3; elem 3 -> 1/1
        assert!((s.recall - (2.0 / 3.0 + 2.0 / 3.0 + 1.0 / 3.0 + 1.0) / 4.0).abs() < 1e-12);
    }

    #[test]
    fn empty_partitions() {
        let e = Partition::from_labels(vec![]);
        assert_eq!(bcubed(&e, &e).f1, 1.0);
    }
}
