//! The record and field identifiers.

use serde::{Deserialize, Serialize};

/// Index of a record within its dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RecordId(pub u32);

impl RecordId {
    /// The id as a usize index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for RecordId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Index of a field within a schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FieldId(pub usize);

/// A single record: normalized string fields plus an aggregation weight.
///
/// Weight is 1.0 for plain TopK *count* queries. The paper's Students and
/// Address datasets aggregate per-record scores (marks, asset worth)
/// instead; those enter here as non-unit weights and the whole pipeline is
/// weight-aware.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Record {
    fields: Vec<String>,
    weight: f64,
}

impl Record {
    /// Build a record from already-normalized fields with unit weight.
    pub fn new(fields: Vec<String>) -> Self {
        Record {
            fields,
            weight: 1.0,
        }
    }

    /// Build a record with an explicit weight.
    pub fn with_weight(fields: Vec<String>, weight: f64) -> Self {
        Record { fields, weight }
    }

    /// Field accessor; panics on out-of-range `FieldId` (schema mismatch is
    /// a programming error).
    #[inline]
    pub fn field(&self, f: FieldId) -> &str {
        &self.fields[f.0]
    }

    /// All fields in schema order.
    #[inline]
    pub fn fields(&self) -> &[String] {
        &self.fields
    }

    /// Aggregation weight.
    #[inline]
    pub fn weight(&self) -> f64 {
        self.weight
    }

    /// Number of fields.
    #[inline]
    pub fn arity(&self) -> usize {
        self.fields.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let r = Record::new(vec!["a".into(), "b".into()]);
        assert_eq!(r.field(FieldId(0)), "a");
        assert_eq!(r.field(FieldId(1)), "b");
        assert_eq!(r.weight(), 1.0);
        assert_eq!(r.arity(), 2);
    }

    #[test]
    fn weighted() {
        let r = Record::with_weight(vec!["x".into()], 2.5);
        assert_eq!(r.weight(), 2.5);
    }

    #[test]
    fn record_id_display_and_index() {
        assert_eq!(RecordId(7).to_string(), "r7");
        assert_eq!(RecordId(7).index(), 7);
        assert!(RecordId(1) < RecordId(2));
    }
}
