//! Train/evaluation splitting utilities.
//!
//! The paper trains its pairwise classifier on "50% of the groups"
//! (§6.4) — splitting by *group*, not by record, so that no entity leaks
//! between train and test. These helpers implement that split plus a
//! deterministic record shuffle.

use crate::dataset::Dataset;
use crate::partition::Partition;

/// Deterministic split of ground-truth groups into train/test halves.
///
/// Groups are assigned by a hash of their label mixed with `seed`, so
/// the split is stable under record reordering. Returns
/// `(train_records, test_records)` as record-index lists.
pub fn split_groups_by_half(truth: &Partition, seed: u64) -> (Vec<usize>, Vec<usize>) {
    let mut train = Vec::new();
    let mut test = Vec::new();
    for (i, &label) in truth.labels().iter().enumerate() {
        // splitmix-style label hash
        let mut x = (label as u64) ^ seed.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x ^= x >> 27;
        if x & 1 == 0 {
            train.push(i);
        } else {
            test.push(i);
        }
    }
    (train, test)
}

/// Restrict a dataset to a subset of record indices (keeping the slice
/// of ground truth when present).
pub fn subset(d: &Dataset, indices: &[usize]) -> Dataset {
    let records = indices.iter().map(|&i| d.records()[i].clone()).collect();
    match d.truth() {
        Some(t) => {
            let labels = indices.iter().map(|&i| t.label(i)).collect();
            Dataset::with_truth(d.schema().clone(), records, Partition::from_labels(labels))
        }
        None => Dataset::new(d.schema().clone(), records),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Schema;
    use crate::record::Record;

    fn labeled(n: usize, groups: usize) -> Dataset {
        let records = (0..n).map(|i| Record::new(vec![format!("r{i}")])).collect();
        let labels = (0..n).map(|i| (i % groups) as u32).collect();
        Dataset::with_truth(
            Schema::new(vec!["f"]),
            records,
            Partition::from_labels(labels),
        )
    }

    #[test]
    fn split_covers_everything_once() {
        let d = labeled(100, 20);
        let (train, test) = split_groups_by_half(d.truth().unwrap(), 7);
        assert_eq!(train.len() + test.len(), 100);
        let mut all: Vec<usize> = train.iter().chain(test.iter()).copied().collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 100);
    }

    #[test]
    fn no_entity_straddles_the_split() {
        let d = labeled(100, 20);
        let truth = d.truth().unwrap();
        let (train, test) = split_groups_by_half(truth, 3);
        let train_labels: std::collections::HashSet<u32> =
            train.iter().map(|&i| truth.label(i)).collect();
        let test_labels: std::collections::HashSet<u32> =
            test.iter().map(|&i| truth.label(i)).collect();
        assert!(train_labels.is_disjoint(&test_labels));
    }

    #[test]
    fn different_seeds_differ() {
        let d = labeled(200, 50);
        let (a, _) = split_groups_by_half(d.truth().unwrap(), 1);
        let (b, _) = split_groups_by_half(d.truth().unwrap(), 2);
        assert_ne!(a, b);
    }

    #[test]
    fn subset_slices_truth() {
        let d = labeled(10, 3);
        let s = subset(&d, &[0, 5, 7]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.truth().unwrap().label(1), d.truth().unwrap().label(5));
        assert_eq!(s.record(crate::RecordId(2)).field(crate::FieldId(0)), "r7");
    }
}
