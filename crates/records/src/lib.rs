#![warn(missing_docs)]

//! Record model, datasets, ground truth, and evaluation metrics.
//!
//! A [`Record`] is a flat tuple of normalized string fields plus a weight
//! (1.0 for plain counting; the Students/Address experiments in the paper
//! aggregate synthetic scores instead of counts, which is just a non-unit
//! weight here). A [`Dataset`] couples records with a [`Schema`] and an
//! optional ground-truth [`Partition`] used by the generators, the
//! classifier trainer, and the evaluation metrics.

pub mod dataset;
pub mod eval;
pub mod io;
pub mod partition;
pub mod record;
pub mod split;
pub mod tokenized;

pub use dataset::{Dataset, Schema};
pub use eval::{bcubed, pairwise_f1, BCubedScores, PairwiseScores};
pub use partition::Partition;
pub use record::{FieldId, Record, RecordId};
pub use split::{split_groups_by_half, subset};
pub use tokenized::{tokenize_dataset, tokenize_dataset_par, TokenizedField, TokenizedRecord};
