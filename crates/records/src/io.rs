//! Plain TSV persistence for datasets.
//!
//! Format: a header line of field names (first column `__weight`, second
//! `__label` when ground truth is present), then one row per record.
//! Tabs and newlines inside fields are replaced by spaces on write — the
//! normalization pass upstream removes them anyway.

use std::io::{self, BufRead, BufWriter, Write};
use std::path::Path;

use crate::dataset::{Dataset, Schema};
use crate::partition::Partition;
use crate::record::Record;

/// Write a dataset as TSV.
pub fn write_tsv(d: &Dataset, path: &Path) -> io::Result<()> {
    let file = std::fs::File::create(path)?;
    let mut w = BufWriter::new(file);
    let has_truth = d.truth().is_some();
    write!(w, "__weight")?;
    if has_truth {
        write!(w, "\t__label")?;
    }
    for f in d.schema().field_names() {
        write!(w, "\t{}", clean(f))?;
    }
    writeln!(w)?;
    for (i, r) in d.records().iter().enumerate() {
        write!(w, "{}", r.weight())?;
        if let Some(t) = d.truth() {
            write!(w, "\t{}", t.label(i))?;
        }
        for f in r.fields() {
            write!(w, "\t{}", clean(f))?;
        }
        writeln!(w)?;
    }
    w.flush()
}

fn clean(s: &str) -> String {
    s.replace(['\t', '\n', '\r'], " ")
}

/// Read a dataset written by [`write_tsv`].
pub fn read_tsv(path: &Path) -> io::Result<Dataset> {
    let file = std::fs::File::open(path)?;
    let mut lines = io::BufReader::new(file).lines();
    let header = lines
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "empty file"))??;
    let cols: Vec<&str> = header.split('\t').collect();
    if cols.first() != Some(&"__weight") {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "missing __weight column",
        ));
    }
    let has_truth = cols.get(1) == Some(&"__label");
    let field_start = if has_truth { 2 } else { 1 };
    let schema = Schema::new(cols[field_start..].to_vec());
    let mut records = Vec::new();
    let mut labels = Vec::new();
    for line in lines {
        let line = line?;
        if line.is_empty() {
            continue;
        }
        let parts: Vec<&str> = line.split('\t').collect();
        if parts.len() != cols.len() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("row has {} columns, expected {}", parts.len(), cols.len()),
            ));
        }
        let weight: f64 = parts[0]
            .parse()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad weight: {e}")))?;
        if has_truth {
            let label: u32 = parts[1].parse().map_err(|e| {
                io::Error::new(io::ErrorKind::InvalidData, format!("bad label: {e}"))
            })?;
            labels.push(label);
        }
        records.push(Record::with_weight(
            parts[field_start..].iter().map(|s| s.to_string()).collect(),
            weight,
        ));
    }
    Ok(if has_truth {
        Dataset::with_truth(schema, records, Partition::from_labels(labels))
    } else {
        Dataset::new(schema, records)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Schema;

    fn sample() -> Dataset {
        Dataset::with_truth(
            Schema::new(vec!["name", "city"]),
            vec![
                Record::with_weight(vec!["ann".into(), "pune".into()], 1.5),
                Record::new(vec!["bob".into(), "delhi".into()]),
            ],
            Partition::from_labels(vec![3, 9]),
        )
    }

    #[test]
    fn roundtrip_with_truth() {
        let dir = std::env::temp_dir().join("topk_records_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("with_truth.tsv");
        let d = sample();
        write_tsv(&d, &path).unwrap();
        let back = read_tsv(&path).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.schema().field_names(), d.schema().field_names());
        assert_eq!(back.record(crate::RecordId(0)).weight(), 1.5);
        assert_eq!(back.truth().unwrap().labels(), &[3, 9]);
    }

    #[test]
    fn roundtrip_without_truth() {
        let dir = std::env::temp_dir().join("topk_records_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("no_truth.tsv");
        let d = Dataset::new(
            Schema::new(vec!["a"]),
            vec![Record::new(vec!["tab\there".into()])],
        );
        write_tsv(&d, &path).unwrap();
        let back = read_tsv(&path).unwrap();
        assert!(back.truth().is_none());
        // tab replaced by space on write
        assert_eq!(
            back.record(crate::RecordId(0)).field(crate::FieldId(0)),
            "tab here"
        );
    }

    #[test]
    fn rejects_garbage() {
        let dir = std::env::temp_dir().join("topk_records_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.tsv");
        std::fs::write(&path, "nope\tnope\nrow").unwrap();
        assert!(read_tsv(&path).is_err());
    }
}

/// Options for reading arbitrary delimited files that were not produced
/// by [`write_tsv`].
#[derive(Debug, Clone)]
pub struct ReadOptions {
    /// Column separator (default `\t`).
    pub delimiter: char,
    /// Whether the first row is a header (default true; otherwise columns
    /// are named `col0`, `col1`, ...).
    pub has_header: bool,
    /// Column holding the record weight; `None` gives every record
    /// weight 1.0. The column is removed from the schema.
    pub weight_column: Option<String>,
    /// Column holding a ground-truth integer label; removed from the
    /// schema when present.
    pub label_column: Option<String>,
    /// Normalize field text (lowercase, strip punctuation) on load
    /// (default true — the similarity kernels assume normalized input).
    pub normalize: bool,
}

impl Default for ReadOptions {
    fn default() -> Self {
        ReadOptions {
            delimiter: '\t',
            has_header: true,
            weight_column: None,
            label_column: None,
            normalize: true,
        }
    }
}

/// Read an arbitrary delimited file under `options`.
pub fn read_delimited(path: &Path, options: &ReadOptions) -> io::Result<Dataset> {
    let bad = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
    let content = std::fs::read_to_string(path)?;
    let mut lines = content.lines().filter(|l| !l.is_empty());
    let first = lines.next().ok_or_else(|| bad("empty file".into()))?;
    let first_cells: Vec<&str> = first.split(options.delimiter).collect();
    let n_cols = first_cells.len();
    let header: Vec<String> = if options.has_header {
        first_cells.iter().map(|c| c.trim().to_string()).collect()
    } else {
        (0..n_cols).map(|i| format!("col{i}")).collect()
    };
    let weight_idx = match &options.weight_column {
        Some(name) => Some(
            header
                .iter()
                .position(|h| h == name)
                .ok_or_else(|| bad(format!("no weight column `{name}`")))?,
        ),
        None => None,
    };
    let label_idx = match &options.label_column {
        Some(name) => Some(
            header
                .iter()
                .position(|h| h == name)
                .ok_or_else(|| bad(format!("no label column `{name}`")))?,
        ),
        None => None,
    };
    let field_indices: Vec<usize> = (0..n_cols)
        .filter(|i| Some(*i) != weight_idx && Some(*i) != label_idx)
        .collect();
    if field_indices.is_empty() {
        return Err(bad("no data columns left".into()));
    }
    let schema = Schema::new(
        field_indices
            .iter()
            .map(|&i| header[i].clone())
            .collect::<Vec<_>>(),
    );

    let mut records = Vec::new();
    let mut labels = Vec::new();
    let data_rows: Box<dyn Iterator<Item = &str>> = if options.has_header {
        Box::new(lines)
    } else {
        Box::new(std::iter::once(first).chain(lines))
    };
    for (row_no, line) in data_rows.enumerate() {
        let cells: Vec<&str> = line.split(options.delimiter).collect();
        if cells.len() != n_cols {
            return Err(bad(format!(
                "row {} has {} columns, expected {n_cols}",
                row_no + 1,
                cells.len()
            )));
        }
        let weight = match weight_idx {
            Some(i) => cells[i]
                .trim()
                .parse()
                .map_err(|e| bad(format!("bad weight on row {}: {e}", row_no + 1)))?,
            None => 1.0,
        };
        if let Some(i) = label_idx {
            let label: u32 = cells[i]
                .trim()
                .parse()
                .map_err(|e| bad(format!("bad label on row {}: {e}", row_no + 1)))?;
            labels.push(label);
        }
        let fields: Vec<String> = field_indices
            .iter()
            .map(|&i| {
                if options.normalize {
                    topk_text::normalize::normalize(cells[i])
                } else {
                    cells[i].to_string()
                }
            })
            .collect();
        records.push(Record::with_weight(fields, weight));
    }
    Ok(if label_idx.is_some() {
        Dataset::with_truth(schema, records, Partition::from_labels(labels))
    } else {
        Dataset::new(schema, records)
    })
}

#[cfg(test)]
mod delimited_tests {
    use super::*;

    fn dir() -> std::path::PathBuf {
        let d = std::env::temp_dir().join("topk_records_io_delim");
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn reads_csv_with_weight_and_label() {
        let path = dir().join("data.csv");
        std::fs::write(
            &path,
            "name,city,score,entity\nAnn X.,Pune,2.5,7\nBob,Delhi,1,9\n",
        )
        .unwrap();
        let d = read_delimited(
            &path,
            &ReadOptions {
                delimiter: ',',
                weight_column: Some("score".into()),
                label_column: Some("entity".into()),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d.schema().field_names(), &["name", "city"]);
        assert_eq!(d.record(crate::RecordId(0)).weight(), 2.5);
        assert_eq!(
            d.record(crate::RecordId(0)).field(crate::FieldId(0)),
            "ann x"
        );
        assert_eq!(d.truth().unwrap().labels(), &[7, 9]);
    }

    #[test]
    fn headerless_columns_get_names() {
        let path = dir().join("nohdr.tsv");
        std::fs::write(&path, "a\t1\nb\t2\n").unwrap();
        let d = read_delimited(
            &path,
            &ReadOptions {
                has_header: false,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(d.schema().field_names(), &["col0", "col1"]);
        assert_eq!(d.len(), 2);
        assert!(d.truth().is_none());
    }

    #[test]
    fn rejects_ragged_rows_and_missing_columns() {
        let path = dir().join("ragged.csv");
        std::fs::write(&path, "a,b\n1\n").unwrap();
        let opts = ReadOptions {
            delimiter: ',',
            ..Default::default()
        };
        assert!(read_delimited(&path, &opts).is_err());
        let opts2 = ReadOptions {
            delimiter: ',',
            weight_column: Some("nope".into()),
            ..Default::default()
        };
        let path2 = dir().join("ok.csv");
        std::fs::write(&path2, "a,b\n1,2\n").unwrap();
        assert!(read_delimited(&path2, &opts2).is_err());
    }

    #[test]
    fn no_normalize_keeps_raw_text() {
        let path = dir().join("raw.tsv");
        std::fs::write(&path, "name\nAnn X.\n").unwrap();
        let d = read_delimited(
            &path,
            &ReadOptions {
                normalize: false,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(
            d.record(crate::RecordId(0)).field(crate::FieldId(0)),
            "Ann X."
        );
    }
}
