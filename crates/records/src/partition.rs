//! Partitions of records into entity groups.

use serde::{Deserialize, Serialize};

/// A partition of `n` records into disjoint groups, stored as a label per
/// record. Labels are arbitrary `u32`s (not required to be dense).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Partition {
    labels: Vec<u32>,
}

impl Partition {
    /// Build from per-record labels.
    pub fn from_labels(labels: Vec<u32>) -> Self {
        Partition { labels }
    }

    /// Build from explicit groups of record indices. Records not mentioned
    /// in any group each get a fresh singleton label.
    pub fn from_groups(n: usize, groups: &[Vec<usize>]) -> Self {
        let mut labels: Vec<Option<u32>> = vec![None; n];
        for (g, members) in groups.iter().enumerate() {
            for &m in members {
                assert!(labels[m].is_none(), "record {m} listed in two groups");
                labels[m] = Some(g as u32);
            }
        }
        let mut next = groups.len() as u32;
        let labels = labels
            .into_iter()
            .map(|l| {
                l.unwrap_or_else(|| {
                    let v = next;
                    next += 1;
                    v
                })
            })
            .collect();
        Partition { labels }
    }

    /// Number of records.
    #[inline]
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when the partition covers no records.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Label of a record.
    #[inline]
    pub fn label(&self, i: usize) -> u32 {
        self.labels[i]
    }

    /// Raw label slice.
    #[inline]
    pub fn labels(&self) -> &[u32] {
        &self.labels
    }

    /// Are two records in the same group?
    #[inline]
    pub fn same_group(&self, i: usize, j: usize) -> bool {
        self.labels[i] == self.labels[j]
    }

    /// Materialize groups as vectors of record indices, largest first.
    pub fn groups(&self) -> Vec<Vec<usize>> {
        let mut map: std::collections::HashMap<u32, Vec<usize>> = std::collections::HashMap::new();
        for (i, &l) in self.labels.iter().enumerate() {
            map.entry(l).or_default().push(i);
        }
        let mut out: Vec<Vec<usize>> = map.into_values().collect();
        out.sort_by(|a, b| b.len().cmp(&a.len()).then_with(|| a[0].cmp(&b[0])));
        out
    }

    /// Number of distinct groups.
    pub fn group_count(&self) -> usize {
        let mut ls = self.labels.clone();
        ls.sort_unstable();
        ls.dedup();
        ls.len()
    }

    /// Group sizes in decreasing order.
    pub fn group_sizes(&self) -> Vec<usize> {
        let mut sizes: Vec<usize> = self.groups().iter().map(|g| g.len()).collect();
        sizes.sort_unstable_by(|a, b| b.cmp(a));
        sizes
    }

    /// Total weight per group given per-record weights, decreasing.
    pub fn group_weights(&self, weights: &[f64]) -> Vec<f64> {
        assert_eq!(weights.len(), self.labels.len());
        let mut map: std::collections::HashMap<u32, f64> = std::collections::HashMap::new();
        for (i, &l) in self.labels.iter().enumerate() {
            *map.entry(l).or_insert(0.0) += weights[i];
        }
        let mut out: Vec<f64> = map.into_values().collect();
        out.sort_by(|a, b| b.total_cmp(a));
        out
    }

    /// Relabel into dense labels `0..k` in first-appearance order.
    pub fn canonicalize(&self) -> Partition {
        let mut map = std::collections::HashMap::new();
        let mut next = 0u32;
        let labels = self
            .labels
            .iter()
            .map(|&l| {
                *map.entry(l).or_insert_with(|| {
                    let v = next;
                    next += 1;
                    v
                })
            })
            .collect();
        Partition { labels }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_groups_fills_singletons() {
        let p = Partition::from_groups(5, &[vec![0, 2], vec![1]]);
        assert!(p.same_group(0, 2));
        assert!(!p.same_group(0, 1));
        assert!(!p.same_group(3, 4));
        assert_eq!(p.group_count(), 4);
    }

    #[test]
    #[should_panic(expected = "two groups")]
    fn duplicate_membership_panics() {
        Partition::from_groups(3, &[vec![0, 1], vec![1, 2]]);
    }

    #[test]
    fn groups_sorted_by_size() {
        let p = Partition::from_labels(vec![9, 9, 9, 4, 4, 7]);
        let gs = p.groups();
        assert_eq!(gs[0].len(), 3);
        assert_eq!(gs[1].len(), 2);
        assert_eq!(gs[2].len(), 1);
        assert_eq!(p.group_sizes(), vec![3, 2, 1]);
    }

    #[test]
    fn weights_aggregate() {
        let p = Partition::from_labels(vec![0, 0, 1]);
        let w = p.group_weights(&[1.0, 2.0, 10.0]);
        assert_eq!(w, vec![10.0, 3.0]);
    }

    #[test]
    fn canonicalize_dense() {
        let p = Partition::from_labels(vec![42, 7, 42]);
        let c = p.canonicalize();
        assert_eq!(c.labels(), &[0, 1, 0]);
        assert_eq!(c.group_count(), 2);
    }

    #[test]
    fn empty() {
        let p = Partition::from_labels(vec![]);
        assert!(p.is_empty());
        assert_eq!(p.group_count(), 0);
    }
}
