//! Precomputed token views of records.
//!
//! Predicates and similarity features repeatedly need word sets, 3-gram
//! sets, and initials for the same fields; tokenizing once per record when
//! a dataset is loaded keeps the join loops allocation-free.

use topk_text::tokenize::{initials_set, qgram_set, word_set, TokenSet};
use topk_text::Parallelism;

use crate::dataset::Dataset;
use crate::record::FieldId;

/// Token views of one field.
#[derive(Debug, Clone)]
pub struct TokenizedField {
    /// The normalized field text.
    pub text: String,
    /// Distinct word tokens.
    pub words: TokenSet,
    /// Distinct character 3-grams.
    pub qgrams3: TokenSet,
    /// Distinct word initials.
    pub initials: TokenSet,
}

impl TokenizedField {
    /// Tokenize one normalized field.
    pub fn new(text: &str) -> Self {
        TokenizedField {
            text: text.to_string(),
            words: word_set(text),
            qgrams3: qgram_set(text, 3),
            initials: initials_set(text),
        }
    }
}

/// Token views of one record, indexed by [`FieldId`].
#[derive(Debug, Clone)]
pub struct TokenizedRecord {
    fields: Vec<TokenizedField>,
    weight: f64,
}

impl TokenizedRecord {
    /// Tokenize all fields of a record.
    pub fn from_fields(fields: &[String], weight: f64) -> Self {
        TokenizedRecord {
            fields: fields.iter().map(|f| TokenizedField::new(f)).collect(),
            weight,
        }
    }

    /// Token views of a field.
    #[inline]
    pub fn field(&self, f: FieldId) -> &TokenizedField {
        &self.fields[f.0]
    }

    /// Record weight.
    #[inline]
    pub fn weight(&self) -> f64 {
        self.weight
    }

    /// Number of fields.
    pub fn arity(&self) -> usize {
        self.fields.len()
    }
}

/// Tokenize every record of a dataset.
pub fn tokenize_dataset(d: &Dataset) -> Vec<TokenizedRecord> {
    let mut sp = topk_obs::Span::enter("tokenize");
    sp.record("records", d.records().len());
    d.records()
        .iter()
        .map(|r| TokenizedRecord::from_fields(r.fields(), r.weight()))
        .collect()
}

/// [`tokenize_dataset`] with an explicit thread budget: records are
/// tokenized in contiguous chunks across scoped threads and reassembled
/// in input order, so the output is identical to the sequential version
/// for every thread count.
pub fn tokenize_dataset_par(d: &Dataset, par: Parallelism) -> Vec<TokenizedRecord> {
    let mut sp = topk_obs::Span::enter("tokenize");
    sp.record("records", d.records().len());
    sp.record("threads", par.get());
    par.map_slice(d.records(), |r| {
        TokenizedRecord::from_fields(r.fields(), r.weight())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Schema;
    use crate::record::Record;

    #[test]
    fn tokenizes_fields() {
        let tr = TokenizedRecord::from_fields(&["sunita sarawagi".into(), "iit".into()], 2.0);
        assert_eq!(tr.arity(), 2);
        assert_eq!(tr.field(FieldId(0)).words.len(), 2);
        assert_eq!(tr.field(FieldId(0)).initials.len(), 1); // both start with 's'
        assert!(!tr.field(FieldId(0)).qgrams3.is_empty());
        assert_eq!(tr.weight(), 2.0);
        assert_eq!(tr.field(FieldId(1)).text, "iit");
    }

    #[test]
    fn dataset_tokenization() {
        let d = Dataset::new(
            Schema::new(vec!["name"]),
            vec![
                Record::new(vec!["a b".into()]),
                Record::new(vec!["c".into()]),
            ],
        );
        let toks = tokenize_dataset(&d);
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[0].field(FieldId(0)).words.len(), 2);
    }
}
