//! Datasets: a schema, records, and optional ground truth.

use serde::{Deserialize, Serialize};

use crate::partition::Partition;
use crate::record::{FieldId, Record, RecordId};

/// Field names of a dataset.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    fields: Vec<String>,
}

impl Schema {
    /// Build a schema from field names.
    pub fn new<S: Into<String>>(fields: Vec<S>) -> Self {
        Schema {
            fields: fields.into_iter().map(Into::into).collect(),
        }
    }

    /// Number of fields.
    pub fn arity(&self) -> usize {
        self.fields.len()
    }

    /// Look up a field id by name.
    pub fn field_id(&self, name: &str) -> Option<FieldId> {
        self.fields.iter().position(|f| f == name).map(FieldId)
    }

    /// Name of a field.
    pub fn field_name(&self, f: FieldId) -> &str {
        &self.fields[f.0]
    }

    /// All field names.
    pub fn field_names(&self) -> &[String] {
        &self.fields
    }
}

/// A dataset: schema, records, and (for synthetic / labeled data) the
/// ground-truth entity partition.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dataset {
    schema: Schema,
    records: Vec<Record>,
    truth: Option<Partition>,
}

impl Dataset {
    /// Build a dataset without ground truth.
    pub fn new(schema: Schema, records: Vec<Record>) -> Self {
        for r in &records {
            assert_eq!(r.arity(), schema.arity(), "record arity != schema arity");
        }
        Dataset {
            schema,
            records,
            truth: None,
        }
    }

    /// Build a dataset with ground truth.
    pub fn with_truth(schema: Schema, records: Vec<Record>, truth: Partition) -> Self {
        assert_eq!(truth.len(), records.len(), "truth length != record count");
        let mut d = Dataset::new(schema, records);
        d.truth = Some(truth);
        d
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// All records.
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    /// One record.
    pub fn record(&self, id: RecordId) -> &Record {
        &self.records[id.index()]
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when there are no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Ground truth partition, if known.
    pub fn truth(&self) -> Option<&Partition> {
        self.truth.as_ref()
    }

    /// Per-record weights as a vector.
    pub fn weights(&self) -> Vec<f64> {
        self.records.iter().map(Record::weight).collect()
    }

    /// Iterate `(RecordId, &Record)`.
    pub fn iter(&self) -> impl Iterator<Item = (RecordId, &Record)> {
        self.records
            .iter()
            .enumerate()
            .map(|(i, r)| (RecordId(i as u32), r))
    }

    /// Take a prefix subset of the dataset (records `0..n`), keeping the
    /// corresponding slice of ground truth. Used by the timing experiment
    /// (the paper ran Figure 6 on a 45k-record subset).
    pub fn head(&self, n: usize) -> Dataset {
        let n = n.min(self.len());
        let records = self.records[..n].to_vec();
        let truth = self
            .truth
            .as_ref()
            .map(|t| Partition::from_labels(t.labels()[..n].to_vec()));
        Dataset {
            schema: self.schema.clone(),
            records,
            truth,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ds() -> Dataset {
        let schema = Schema::new(vec!["name", "city"]);
        let records = vec![
            Record::new(vec!["ann".into(), "pune".into()]),
            Record::new(vec!["ann x".into(), "pune".into()]),
            Record::new(vec!["bob".into(), "delhi".into()]),
        ];
        Dataset::with_truth(schema, records, Partition::from_labels(vec![0, 0, 1]))
    }

    #[test]
    fn schema_lookup() {
        let d = ds();
        assert_eq!(d.schema().field_id("city"), Some(FieldId(1)));
        assert_eq!(d.schema().field_id("nope"), None);
        assert_eq!(d.schema().field_name(FieldId(0)), "name");
        assert_eq!(d.schema().arity(), 2);
    }

    #[test]
    fn record_access() {
        let d = ds();
        assert_eq!(d.len(), 3);
        assert_eq!(d.record(RecordId(2)).field(FieldId(0)), "bob");
        assert_eq!(d.iter().count(), 3);
        assert_eq!(d.weights(), vec![1.0, 1.0, 1.0]);
    }

    #[test]
    fn truth_attached() {
        let d = ds();
        assert!(d.truth().unwrap().same_group(0, 1));
    }

    #[test]
    fn head_slices_truth() {
        let d = ds().head(2);
        assert_eq!(d.len(), 2);
        assert_eq!(d.truth().unwrap().len(), 2);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        Dataset::new(
            Schema::new(vec!["a", "b"]),
            vec![Record::new(vec!["x".into()])],
        );
    }
}
