//! Property-based tests for the text substrate.

use proptest::prelude::*;
use topk_text::sim::*;
use topk_text::tokenize::{qgram_set, word_set};
use topk_text::{normalize, CorpusStats};

fn word_strategy() -> impl Strategy<Value = String> {
    "[a-d]{0,6}( [a-d]{0,6}){0,4}"
}

proptest! {
    #[test]
    fn jaccard_bounds_and_symmetry(a in word_strategy(), b in word_strategy()) {
        let (sa, sb) = (word_set(&a), word_set(&b));
        let j = jaccard(&sa, &sb);
        prop_assert!((0.0..=1.0).contains(&j));
        prop_assert_eq!(j, jaccard(&sb, &sa));
        if !sa.is_empty() {
            prop_assert_eq!(jaccard(&sa, &sa), 1.0);
        }
    }

    #[test]
    fn dice_ge_jaccard(a in word_strategy(), b in word_strategy()) {
        let (sa, sb) = (word_set(&a), word_set(&b));
        // Dice = 2J/(1+J) ≥ J for J in [0,1].
        prop_assert!(dice(&sa, &sb) + 1e-12 >= jaccard(&sa, &sb));
    }

    #[test]
    fn overlap_ge_jaccard(a in word_strategy(), b in word_strategy()) {
        let (sa, sb) = (word_set(&a), word_set(&b));
        prop_assert!(overlap_coefficient(&sa, &sb) + 1e-12 >= jaccard(&sa, &sb));
    }

    #[test]
    fn levenshtein_triangle(a in "[a-c]{0,8}", b in "[a-c]{0,8}", c in "[a-c]{0,8}") {
        let ab = levenshtein(&a, &b);
        let bc = levenshtein(&b, &c);
        let ac = levenshtein(&a, &c);
        prop_assert!(ac <= ab + bc);
        prop_assert_eq!(levenshtein(&a, &a), 0);
        prop_assert_eq!(ab, levenshtein(&b, &a));
    }

    #[test]
    fn jaro_winkler_bounds(a in "[a-e]{0,10}", b in "[a-e]{0,10}") {
        let j = jaro(&a, &b);
        let jw = jaro_winkler(&a, &b);
        prop_assert!((0.0..=1.0).contains(&j));
        prop_assert!((0.0..=1.0).contains(&jw));
        prop_assert!(jw + 1e-12 >= j);
        prop_assert!((jaro(&b, &a) - j).abs() < 1e-12);
    }

    #[test]
    fn tfidf_cosine_bounds(a in word_strategy(), b in word_strategy(), c in word_strategy()) {
        let docs = [word_set(&a), word_set(&b), word_set(&c)];
        let stats = CorpusStats::from_documents(docs.iter());
        let s = tfidf_cosine(&docs[0], &docs[1], &stats);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&s));
        // Self-similarity is 1 unless every token has zero IDF (appears
        // in all documents), in which case the vector is zero and the
        // kernel reports 0 by convention.
        let has_idf_mass = docs[0].as_slice().iter().any(|&t| stats.idf(t) > 0.0);
        let self_sim = tfidf_cosine(&docs[0], &docs[0], &stats);
        if !docs[0].is_empty() && has_idf_mass {
            prop_assert!((self_sim - 1.0).abs() < 1e-9);
        } else {
            prop_assert!(self_sim == 0.0 || (self_sim - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn normalize_idempotent(s in "\\PC{0,30}") {
        let once = normalize::normalize(&s);
        prop_assert_eq!(normalize::normalize(&once), once.clone());
        // normalized text has no double spaces and no leading/trailing space
        prop_assert!(!once.contains("  "));
        prop_assert_eq!(once.trim(), &once);
    }

    #[test]
    fn qgram_identity(s in "[a-f]{0,12}") {
        let q = qgram_set(&s, 3);
        if !s.is_empty() {
            prop_assert!(!q.is_empty());
            prop_assert_eq!(jaccard(&q, &qgram_set(&s, 3)), 1.0);
        }
    }

    #[test]
    fn intersection_size_correct(a in word_strategy(), b in word_strategy()) {
        let (sa, sb) = (word_set(&a), word_set(&b));
        let brute = sa
            .as_slice()
            .iter()
            .filter(|t| sb.as_slice().contains(t))
            .count();
        prop_assert_eq!(sa.intersection_size(&sb), brute);
        prop_assert_eq!(sa.union_size(&sb), sa.len() + sb.len() - brute);
    }
}
