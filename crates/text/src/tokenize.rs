//! Tokenizers: words, character q-grams, initials.
//!
//! Tokens are interned as FNV-1a hashes; a [`TokenSet`] is a sorted,
//! deduplicated vector of token hashes. Sorted representation makes every
//! set operation downstream (Jaccard, overlap, TF-IDF dot products,
//! posting-list construction) a linear merge.

use crate::hash::{hash_str, Token};

/// A sorted, deduplicated set of interned tokens.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TokenSet {
    tokens: Vec<Token>,
}

impl TokenSet {
    /// Build from an arbitrary token iterator; sorts and dedups.
    pub fn from_tokens(mut tokens: Vec<Token>) -> Self {
        tokens.sort_unstable();
        tokens.dedup();
        TokenSet { tokens }
    }

    /// The empty set.
    pub fn empty() -> Self {
        TokenSet { tokens: Vec::new() }
    }

    /// Number of distinct tokens.
    #[inline]
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// True when no tokens are present.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// Sorted slice of tokens.
    #[inline]
    pub fn as_slice(&self) -> &[Token] {
        &self.tokens
    }

    /// Membership test (binary search).
    #[inline]
    pub fn contains(&self, t: Token) -> bool {
        self.tokens.binary_search(&t).is_ok()
    }

    /// Size of the intersection with `other` (linear merge).
    pub fn intersection_size(&self, other: &TokenSet) -> usize {
        let (mut i, mut j, mut n) = (0, 0, 0);
        let (a, b) = (&self.tokens, &other.tokens);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    n += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        n
    }

    /// Iterator over tokens in the intersection.
    pub fn intersection<'a>(&'a self, other: &'a TokenSet) -> impl Iterator<Item = Token> + 'a {
        Intersection {
            a: &self.tokens,
            b: &other.tokens,
            i: 0,
            j: 0,
        }
    }

    /// Union size: `|A| + |B| - |A ∩ B|`.
    pub fn union_size(&self, other: &TokenSet) -> usize {
        self.len() + other.len() - self.intersection_size(other)
    }
}

struct Intersection<'a> {
    a: &'a [Token],
    b: &'a [Token],
    i: usize,
    j: usize,
}

impl Iterator for Intersection<'_> {
    type Item = Token;
    fn next(&mut self) -> Option<Token> {
        while self.i < self.a.len() && self.j < self.b.len() {
            match self.a[self.i].cmp(&self.b[self.j]) {
                std::cmp::Ordering::Less => self.i += 1,
                std::cmp::Ordering::Greater => self.j += 1,
                std::cmp::Ordering::Equal => {
                    let t = self.a[self.i];
                    self.i += 1;
                    self.j += 1;
                    return Some(t);
                }
            }
        }
        None
    }
}

/// Split normalized text into words (whitespace separated).
pub fn words(s: &str) -> Vec<&str> {
    s.split_whitespace().collect()
}

/// Token set of the words of (already normalized) text.
pub fn word_set(s: &str) -> TokenSet {
    TokenSet::from_tokens(s.split_whitespace().map(hash_str).collect())
}

/// Character q-grams of a *single word or full string* (spaces included as
/// context characters, matching the common definition used for dedup
/// blocking). Strings shorter than `q` yield the string itself as one gram.
pub fn qgrams(s: &str, q: usize) -> Vec<Token> {
    let chars: Vec<char> = s.chars().collect();
    if chars.is_empty() {
        return Vec::new();
    }
    if chars.len() <= q {
        return vec![hash_str(s)];
    }
    let mut out = Vec::with_capacity(chars.len() - q + 1);
    let mut buf = String::with_capacity(q * 4);
    for w in chars.windows(q) {
        buf.clear();
        buf.extend(w.iter());
        out.push(hash_str(&buf));
    }
    out
}

/// Token set of the q-grams of text.
pub fn qgram_set(s: &str, q: usize) -> TokenSet {
    TokenSet::from_tokens(qgrams(s, q))
}

/// First character of each word, in word order (e.g. `"sunita sarawagi"`
/// -> `['s', 's']`). Used by the paper's initials-match predicates.
pub fn initials(s: &str) -> Vec<char> {
    s.split_whitespace()
        .filter_map(|w| w.chars().next())
        .collect()
}

/// Sorted deduplicated initials set, hashed as tokens, for overlap tests
/// like "at least one common initial".
pub fn initials_set(s: &str) -> TokenSet {
    TokenSet::from_tokens(
        s.split_whitespace()
            .filter_map(|w| w.chars().next())
            .map(|c| {
                let mut b = [0u8; 4];
                hash_str(c.encode_utf8(&mut b))
            })
            .collect(),
    )
}

/// Do the initials of two strings match exactly, as *sorted multisets*?
///
/// The paper's citation predicates require "initials match exactly"; author
/// name variants frequently permute name parts ("Rowling J K" vs
/// "J K Rowling"), so we compare order-insensitively.
pub fn initials_match(a: &str, b: &str) -> bool {
    let mut ia = initials(a);
    let mut ib = initials(b);
    ia.sort_unstable();
    ib.sort_unstable();
    ia == ib && !ia.is_empty()
}

/// Last whitespace-separated word of a string, if any.
pub fn last_word(s: &str) -> Option<&str> {
    s.split_whitespace().next_back()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_set_dedups() {
        let ts = word_set("a b a c b");
        assert_eq!(ts.len(), 3);
    }

    #[test]
    fn intersection_and_union() {
        let a = word_set("x y z");
        let b = word_set("y z w");
        assert_eq!(a.intersection_size(&b), 2);
        assert_eq!(a.union_size(&b), 4);
        let common: Vec<_> = a.intersection(&b).collect();
        assert_eq!(common.len(), 2);
    }

    #[test]
    fn qgrams_basic() {
        // "abcd" -> "abc", "bcd"
        assert_eq!(qgrams("abcd", 3).len(), 2);
        // short strings hash whole string
        assert_eq!(qgrams("ab", 3), vec![hash_str("ab")]);
        assert!(qgrams("", 3).is_empty());
    }

    #[test]
    fn qgram_set_equal_strings_identical() {
        assert_eq!(qgram_set("sarawagi", 3), qgram_set("sarawagi", 3));
    }

    #[test]
    fn initials_extraction() {
        assert_eq!(initials("sunita sarawagi"), vec!['s', 's']);
        assert!(initials_match("s sarawagi", "sunita sarawagi"));
        assert!(initials_match("sarawagi s", "s sarawagi"));
        assert!(!initials_match("v deshpande", "s sarawagi"));
        assert!(!initials_match("", ""));
    }

    #[test]
    fn contains_and_empty() {
        let ts = word_set("alpha beta");
        assert!(ts.contains(hash_str("alpha")));
        assert!(!ts.contains(hash_str("gamma")));
        assert!(TokenSet::empty().is_empty());
    }

    #[test]
    fn last_word_works() {
        assert_eq!(last_word("john a smith"), Some("smith"));
        assert_eq!(last_word(""), None);
    }
}
