//! Set-overlap similarities over [`TokenSet`]s.

use crate::tokenize::TokenSet;

/// Number of common tokens.
#[inline]
pub fn common_count(a: &TokenSet, b: &TokenSet) -> usize {
    a.intersection_size(b)
}

/// Jaccard similarity `|A ∩ B| / |A ∪ B|`; 0 when both sets are empty.
pub fn jaccard(a: &TokenSet, b: &TokenSet) -> f64 {
    let inter = a.intersection_size(b);
    let union = a.len() + b.len() - inter;
    if union == 0 {
        0.0
    } else {
        inter as f64 / union as f64
    }
}

/// Dice coefficient `2|A ∩ B| / (|A| + |B|)`; 0 when both sets are empty.
pub fn dice(a: &TokenSet, b: &TokenSet) -> f64 {
    let denom = a.len() + b.len();
    if denom == 0 {
        0.0
    } else {
        2.0 * a.intersection_size(b) as f64 / denom as f64
    }
}

/// Overlap coefficient `|A ∩ B| / min(|A|, |B|)`; 0 when either set is
/// empty.
pub fn overlap_coefficient(a: &TokenSet, b: &TokenSet) -> f64 {
    let m = a.len().min(b.len());
    if m == 0 {
        0.0
    } else {
        a.intersection_size(b) as f64 / m as f64
    }
}

/// The paper's N1 form: common tokens as a fraction of the *smaller* set's
/// size ("common 3-grams … more than 60% of the size of the smaller
/// field"). Identical to the overlap coefficient; kept as a named alias so
/// predicate definitions read like the paper.
#[inline]
pub fn overlap_fraction_of_smaller(a: &TokenSet, b: &TokenSet) -> f64 {
    overlap_coefficient(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenize::word_set;

    #[test]
    fn jaccard_basic() {
        let a = word_set("a b c");
        let b = word_set("b c d");
        assert!((jaccard(&a, &b) - 0.5).abs() < 1e-12);
        assert_eq!(jaccard(&a, &a), 1.0);
        assert_eq!(jaccard(&word_set(""), &word_set("")), 0.0);
    }

    #[test]
    fn dice_basic() {
        let a = word_set("a b");
        let b = word_set("b c");
        assert!((dice(&a, &b) - 0.5).abs() < 1e-12);
        assert_eq!(dice(&word_set(""), &word_set("")), 0.0);
    }

    #[test]
    fn overlap_basic() {
        let a = word_set("a b");
        let b = word_set("a b c d");
        assert_eq!(overlap_coefficient(&a, &b), 1.0);
        assert_eq!(overlap_coefficient(&word_set(""), &b), 0.0);
    }

    #[test]
    fn common_count_basic() {
        let a = word_set("x y z");
        let b = word_set("z q");
        assert_eq!(common_count(&a, &b), 1);
    }
}
