//! IDF-weighted set similarities.

use crate::idf::CorpusStats;
use crate::tokenize::TokenSet;

/// TF-IDF cosine similarity between two token *sets* (binary term
/// frequency, IDF weighting). This is the "TFIDF similarity" the paper's
/// canopy discussion refers to (§3, citing McCallum et al. / Cohen &
/// Richman): cheap to evaluate through an inverted index, unlike edit
/// distance.
pub fn tfidf_cosine(a: &TokenSet, b: &TokenSet, stats: &CorpusStats) -> f64 {
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let dot: f64 = a.intersection(b).map(|t| stats.idf(t).powi(2)).sum();
    if dot == 0.0 {
        return 0.0;
    }
    let norm = |ts: &TokenSet| -> f64 {
        ts.as_slice()
            .iter()
            .map(|&t| stats.idf(t).powi(2))
            .sum::<f64>()
            .sqrt()
    };
    let na = norm(a);
    let nb = norm(b);
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

/// IDF-weighted Jaccard: `Σ_{t ∈ A∩B} idf(t) / Σ_{t ∈ A∪B} idf(t)`.
pub fn weighted_jaccard(a: &TokenSet, b: &TokenSet, stats: &CorpusStats) -> f64 {
    let inter: f64 = a.intersection(b).map(|t| stats.idf(t)).sum();
    let sum = |ts: &TokenSet| -> f64 { ts.as_slice().iter().map(|&t| stats.idf(t)).sum() };
    let union = sum(a) + sum(b) - inter;
    if union <= 0.0 {
        0.0
    } else {
        inter / union
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenize::word_set;

    fn stats() -> CorpusStats {
        let docs = [
            word_set("the cat"),
            word_set("the dog"),
            word_set("the bird"),
            word_set("the rhinoceros"),
        ];
        CorpusStats::from_documents(docs.iter())
    }

    #[test]
    fn identical_sets_score_one() {
        let s = stats();
        let a = word_set("the cat");
        assert!((tfidf_cosine(&a, &a, &s) - 1.0).abs() < 1e-12);
        assert!((weighted_jaccard(&a, &a, &s) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rare_overlap_beats_common_overlap() {
        let s = stats();
        let a = word_set("the rhinoceros");
        let b = word_set("a rhinoceros");
        let c = word_set("the zebra");
        // sharing "rhinoceros" (rare) scores higher than sharing "the".
        assert!(tfidf_cosine(&a, &b, &s) > tfidf_cosine(&a, &c, &s));
        assert!(weighted_jaccard(&a, &b, &s) > weighted_jaccard(&a, &c, &s));
    }

    #[test]
    fn empty_inputs() {
        let s = stats();
        let e = word_set("");
        let a = word_set("the cat");
        assert_eq!(tfidf_cosine(&e, &a, &s), 0.0);
        assert_eq!(weighted_jaccard(&e, &e, &s), 0.0);
    }

    #[test]
    fn bounded_by_one() {
        let s = stats();
        let a = word_set("the cat dog");
        let b = word_set("the cat bird");
        let t = tfidf_cosine(&a, &b, &s);
        assert!((0.0..=1.0).contains(&t));
    }
}
