//! Jaro and Jaro-Winkler similarity — "an efficient approximation of edit
//! distance specifically tailored for names" (paper §6.1.1, citing
//! Bilenko et al. 2003).

/// Jaro similarity in `[0, 1]`.
pub fn jaro(a: &str, b: &str) -> f64 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    if a == b {
        return 1.0;
    }
    let window = (a.len().max(b.len()) / 2).saturating_sub(1);
    let mut b_matched = vec![false; b.len()];
    let mut a_matches: Vec<char> = Vec::new();
    for (i, &ca) in a.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(b.len());
        for j in lo..hi {
            if !b_matched[j] && b[j] == ca {
                b_matched[j] = true;
                a_matches.push(ca);
                break;
            }
        }
    }
    let m = a_matches.len();
    if m == 0 {
        return 0.0;
    }
    // Transpositions: compare matched sequences in order.
    let b_matches: Vec<char> = b
        .iter()
        .zip(b_matched.iter())
        .filter_map(|(&c, &used)| used.then_some(c))
        .collect();
    let t = a_matches
        .iter()
        .zip(b_matches.iter())
        .filter(|(x, y)| x != y)
        .count() as f64
        / 2.0;
    let m = m as f64;
    (m / a.len() as f64 + m / b.len() as f64 + (m - t) / m) / 3.0
}

/// Jaro-Winkler similarity with the standard prefix scale `p = 0.1` and a
/// prefix cap of 4 characters.
pub fn jaro_winkler(a: &str, b: &str) -> f64 {
    let j = jaro(a, b);
    let prefix = a
        .chars()
        .zip(b.chars())
        .take(4)
        .take_while(|(x, y)| x == y)
        .count() as f64;
    j + prefix * 0.1 * (1.0 - j)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-3
    }

    #[test]
    fn jaro_reference_values() {
        // Classic published examples.
        assert!(close(jaro("martha", "marhta"), 0.9444));
        assert!(close(jaro("dixon", "dicksonx"), 0.7667));
        assert!(close(jaro("jellyfish", "smellyfish"), 0.8963));
    }

    #[test]
    fn jaro_winkler_reference_values() {
        assert!(close(jaro_winkler("martha", "marhta"), 0.9611));
        assert!(close(jaro_winkler("dixon", "dicksonx"), 0.8133));
    }

    #[test]
    fn identical_and_empty() {
        assert_eq!(jaro("abc", "abc"), 1.0);
        assert_eq!(jaro("", "abc"), 0.0);
        assert_eq!(jaro("abc", ""), 0.0);
        assert_eq!(jaro("", ""), 0.0);
        assert_eq!(jaro_winkler("", ""), 0.0);
    }

    #[test]
    fn no_common_chars() {
        assert_eq!(jaro("abc", "xyz"), 0.0);
    }

    #[test]
    fn symmetric() {
        assert!(close(jaro("prefix", "perfix"), jaro("perfix", "prefix")));
        assert!(close(
            jaro_winkler("deshpande", "deshpnade"),
            jaro_winkler("deshpnade", "deshpande")
        ));
    }

    #[test]
    fn winkler_boosts_shared_prefix() {
        assert!(jaro_winkler("sarawagi", "sarawati") >= jaro("sarawagi", "sarawati"));
    }
}
