//! String and set similarity kernels.
//!
//! All kernels return values in `[0, 1]` (1 = identical) unless documented
//! otherwise, are symmetric in their arguments, and treat a pair of empty
//! inputs as dissimilar (0) — an empty field carries no evidence of
//! identity, so the dedup layers must never collapse on it.

mod edit;
mod hybrid;
mod jaro;
mod sets;
mod tfidf;

pub use edit::{levenshtein, levenshtein_normalized, levenshtein_similarity};
pub use hybrid::{monge_elkan, monge_elkan_sym, smith_waterman, soft_tfidf};
pub use jaro::{jaro, jaro_winkler};
pub use sets::{common_count, dice, jaccard, overlap_coefficient, overlap_fraction_of_smaller};
pub use tfidf::{tfidf_cosine, weighted_jaccard};
