//! Levenshtein edit distance.

/// Levenshtein distance between two strings (unit costs), computed with a
/// two-row DP over `char`s.
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            cur[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Distance normalized by the longer string's length, in `[0, 1]`.
/// Two empty strings have distance 0.
pub fn levenshtein_normalized(a: &str, b: &str) -> f64 {
    let max = a.chars().count().max(b.chars().count());
    if max == 0 {
        0.0
    } else {
        levenshtein(a, b) as f64 / max as f64
    }
}

/// Similarity `1 - normalized distance`; 0 for a pair of empty strings
/// (no evidence), per the crate-wide convention.
pub fn levenshtein_similarity(a: &str, b: &str) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 0.0;
    }
    1.0 - levenshtein_normalized(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_distances() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("abc", "abc"), 0);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
    }

    #[test]
    fn symmetric() {
        assert_eq!(
            levenshtein("sarawagi", "sarawgi"),
            levenshtein("sarawgi", "sarawagi")
        );
    }

    #[test]
    fn normalized_bounds() {
        assert_eq!(levenshtein_normalized("", ""), 0.0);
        assert_eq!(levenshtein_normalized("a", "b"), 1.0);
        let s = levenshtein_similarity("deshpande", "deshpnde");
        assert!(s > 0.8 && s < 1.0);
    }

    #[test]
    fn unicode_chars_counted_once() {
        assert_eq!(levenshtein("café", "cafe"), 1);
    }
}
