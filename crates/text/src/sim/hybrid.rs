//! Hybrid token/character similarities from the record-linkage
//! literature the paper builds on (Cohen, Ravikumar & Fienberg 2003;
//! Monge & Elkan 1996): Monge-Elkan, SoftTFIDF, and the Smith-Waterman
//! local-alignment score they both can wrap.

use crate::idf::CorpusStats;
use crate::sim::jaro::jaro_winkler;
use crate::tokenize::words;

/// Monge-Elkan similarity: for each word of `a`, its best Jaro-Winkler
/// match in `b`, averaged. Asymmetric by definition; use
/// [`monge_elkan_sym`] for the symmetrized variant.
pub fn monge_elkan(a: &str, b: &str) -> f64 {
    let wa = words(a);
    let wb = words(b);
    if wa.is_empty() || wb.is_empty() {
        return 0.0;
    }
    let total: f64 = wa
        .iter()
        .map(|x| wb.iter().map(|y| jaro_winkler(x, y)).fold(0.0f64, f64::max))
        .sum();
    total / wa.len() as f64
}

/// Symmetrized Monge-Elkan: the mean of both directions.
pub fn monge_elkan_sym(a: &str, b: &str) -> f64 {
    (monge_elkan(a, b) + monge_elkan(b, a)) / 2.0
}

/// SoftTFIDF (Cohen et al. 2003): TF-IDF cosine where tokens are matched
/// *approximately* — words `x ∈ a`, `y ∈ b` count as matching when
/// `jaro_winkler(x, y) ≥ theta`, contributing `idf(x)·idf(y)·jw(x, y)`.
///
/// Binary term frequencies, like the rest of this crate.
pub fn soft_tfidf(a: &str, b: &str, stats: &CorpusStats, theta: f64) -> f64 {
    let wa = words(a);
    let wb = words(b);
    if wa.is_empty() || wb.is_empty() {
        return 0.0;
    }
    let idf = |w: &str| stats.idf(crate::hash::hash_str(w));
    let mut dot = 0.0;
    for x in &wa {
        // best approximate match of x in b
        let mut best = 0.0f64;
        let mut best_idf = 0.0;
        for y in &wb {
            let s = jaro_winkler(x, y);
            if s >= theta && s > best {
                best = s;
                best_idf = idf(y);
            }
        }
        if best > 0.0 {
            dot += idf(x) * best_idf * best;
        }
    }
    let norm = |ws: &[&str]| -> f64 { ws.iter().map(|w| idf(w).powi(2)).sum::<f64>().sqrt() };
    let (na, nb) = (norm(&wa), norm(&wb));
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        (dot / (na * nb)).clamp(0.0, 1.0)
    }
}

/// Smith-Waterman local-alignment similarity over characters, normalized
/// to `[0, 1]` by the length of the shorter string. Match +2,
/// mismatch −1, gap −1 (standard small-alphabet defaults).
pub fn smith_waterman(a: &str, b: &str) -> f64 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    const MATCH: i32 = 2;
    const MISMATCH: i32 = -1;
    const GAP: i32 = -1;
    let mut prev = vec![0i32; b.len() + 1];
    let mut cur = vec![0i32; b.len() + 1];
    let mut best = 0i32;
    for &ca in &a {
        for (j, &cb) in b.iter().enumerate() {
            let diag = prev[j] + if ca == cb { MATCH } else { MISMATCH };
            let up = prev[j + 1] + GAP;
            let left = cur[j] + GAP;
            cur[j + 1] = diag.max(up).max(left).max(0);
            best = best.max(cur[j + 1]);
        }
        std::mem::swap(&mut prev, &mut cur);
        cur[0] = 0;
    }
    let max_possible = (a.len().min(b.len()) as i32) * MATCH;
    best as f64 / max_possible as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenize::word_set;

    #[test]
    fn monge_elkan_name_variants() {
        let s = monge_elkan_sym("sunita sarawagi", "s sarawagi");
        assert!(s > 0.7, "got {s}");
        assert!(monge_elkan_sym("sunita sarawagi", "qqq zzz") < 0.6);
        assert_eq!(monge_elkan("", "x"), 0.0);
        assert_eq!(monge_elkan_sym("abc", "abc"), 1.0);
    }

    #[test]
    fn monge_elkan_asymmetry() {
        // Every word of "sarawagi" matches in the longer string, so that
        // direction scores 1; the reverse does not.
        let one_way = monge_elkan("sarawagi", "sunita sarawagi");
        let other = monge_elkan("sunita sarawagi", "sarawagi");
        assert_eq!(one_way, 1.0);
        assert!(other < 1.0);
    }

    #[test]
    fn soft_tfidf_tolerates_typos() {
        let docs = [
            word_set("sunita sarawagi"),
            word_set("vinay deshpande"),
            word_set("sourabh kasliwal"),
            word_set("common common"),
        ];
        let stats = CorpusStats::from_documents(docs.iter());
        let typo = soft_tfidf("sunita sarawagi", "sunita sarawagy", &stats, 0.9);
        let exact = soft_tfidf("sunita sarawagi", "sunita sarawagi", &stats, 0.9);
        let unrelated = soft_tfidf("sunita sarawagi", "vinay deshpande", &stats, 0.9);
        assert!(exact > 0.99);
        assert!(typo > 0.8, "typo pair scored {typo}");
        assert!(unrelated < 0.2);
        assert_eq!(soft_tfidf("", "x", &stats, 0.9), 0.0);
    }

    #[test]
    fn smith_waterman_local_alignment() {
        assert_eq!(smith_waterman("abc", "abc"), 1.0);
        // shared substring scores by the shorter string's length
        assert!(smith_waterman("xxsarawagiyy", "sarawagi") > 0.99);
        assert!(smith_waterman("abc", "xyz") < 0.2);
        assert_eq!(smith_waterman("", "abc"), 0.0);
        // symmetric
        assert!(
            (smith_waterman("deshpande", "deshpnde") - smith_waterman("deshpnde", "deshpande"))
                .abs()
                < 1e-12
        );
    }
}
