//! Corpus-level document-frequency / IDF statistics.
//!
//! The paper's custom author similarity and its S1 predicate ("minimum IDF
//! over two author words is at least 13") need per-token inverse document
//! frequencies computed over the whole dataset. [`CorpusStats`] is built
//! once per field per dataset and shared read-only afterwards.

use std::collections::HashMap;

use crate::hash::Token;
use crate::tokenize::TokenSet;

/// Document frequencies and IDF values for a token vocabulary.
#[derive(Debug, Clone, Default)]
pub struct CorpusStats {
    doc_count: usize,
    doc_freq: HashMap<Token, u32>,
}

impl CorpusStats {
    /// Create empty stats.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from an iterator of documents (each a token set).
    pub fn from_documents<'a>(docs: impl IntoIterator<Item = &'a TokenSet>) -> Self {
        let mut s = Self::new();
        for d in docs {
            s.add_document(d);
        }
        s
    }

    /// Register one document's token set.
    pub fn add_document(&mut self, doc: &TokenSet) {
        self.doc_count += 1;
        for &t in doc.as_slice() {
            *self.doc_freq.entry(t).or_insert(0) += 1;
        }
    }

    /// Number of documents seen.
    #[inline]
    pub fn doc_count(&self) -> usize {
        self.doc_count
    }

    /// Document frequency of a token (0 for unseen tokens).
    #[inline]
    pub fn doc_freq(&self, t: Token) -> u32 {
        self.doc_freq.get(&t).copied().unwrap_or(0)
    }

    /// Smoothed IDF: `ln((1 + N) / (1 + df))`.
    ///
    /// Unseen tokens get the maximum IDF (`df = 0`). With N in the hundreds
    /// of thousands, rare tokens score ~12-13, matching the scale of the
    /// paper's "IDF at least 13" threshold when natural log base is used
    /// over a quarter-million documents.
    pub fn idf(&self, t: Token) -> f64 {
        ((1.0 + self.doc_count as f64) / (1.0 + self.doc_freq(t) as f64)).ln()
    }

    /// The maximum IDF any token can have under this corpus.
    pub fn max_idf(&self) -> f64 {
        (1.0 + self.doc_count as f64).ln()
    }

    /// Minimum IDF over the tokens of a set; `None` for an empty set.
    pub fn min_idf(&self, ts: &TokenSet) -> Option<f64> {
        ts.as_slice()
            .iter()
            .map(|&t| self.idf(t))
            .min_by(|a, b| a.total_cmp(b))
    }

    /// Maximum IDF over the tokens of a set; `None` for an empty set.
    pub fn max_idf_of(&self, ts: &TokenSet) -> Option<f64> {
        ts.as_slice()
            .iter()
            .map(|&t| self.idf(t))
            .max_by(|a, b| a.total_cmp(b))
    }

    /// Number of distinct tokens in the vocabulary.
    pub fn vocab_size(&self) -> usize {
        self.doc_freq.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::hash_str;
    use crate::tokenize::word_set;

    fn corpus() -> CorpusStats {
        let docs = [
            word_set("common rare1"),
            word_set("common x"),
            word_set("common y"),
            word_set("common z"),
        ];
        CorpusStats::from_documents(docs.iter())
    }

    #[test]
    fn rare_tokens_have_higher_idf() {
        let c = corpus();
        assert!(c.idf(hash_str("rare1")) > c.idf(hash_str("common")));
    }

    #[test]
    fn unseen_gets_max_idf() {
        let c = corpus();
        assert_eq!(c.idf(hash_str("neverseen")), c.max_idf());
        assert_eq!(c.doc_freq(hash_str("neverseen")), 0);
    }

    #[test]
    fn min_max_over_set() {
        let c = corpus();
        let ts = word_set("common rare1");
        let min = c.min_idf(&ts).unwrap();
        let max = c.max_idf_of(&ts).unwrap();
        assert!(min < max);
        assert!(c.min_idf(&word_set("")).is_none());
    }

    #[test]
    fn counts() {
        let c = corpus();
        assert_eq!(c.doc_count(), 4);
        assert_eq!(c.doc_freq(hash_str("common")), 4);
        assert_eq!(c.vocab_size(), 5);
    }
}
