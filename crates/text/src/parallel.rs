//! Thread-count configuration and deterministic fan-out helpers.
//!
//! Every parallel hot path in the pipeline (tokenization, blocking-key
//! generation, collapse candidate search, upper-bound refinement, pairwise
//! scoring) funnels through [`Parallelism`] and the two map helpers here.
//! The helpers split work into **contiguous chunks in input order** and
//! concatenate per-chunk results **in chunk order**, so the output vector
//! is bit-identical to a sequential `map` regardless of thread count or
//! scheduling — the determinism guarantee the differential tests in
//! `tests/prop_parallel.rs` lock in (see `docs/PARALLELISM.md`).

use std::num::NonZeroUsize;

/// How many worker threads a pipeline stage may use.
///
/// `threads = 1` means strictly sequential (no scope is created, no
/// spawn overhead); anything larger fans out over scoped threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Parallelism {
    threads: NonZeroUsize,
}

impl Parallelism {
    /// Use every core the OS reports (`std::thread::available_parallelism`),
    /// falling back to sequential when detection fails.
    pub fn auto() -> Self {
        Parallelism {
            threads: std::thread::available_parallelism().unwrap_or(NonZeroUsize::new(1).unwrap()),
        }
    }

    /// Strictly sequential execution.
    pub fn sequential() -> Self {
        Parallelism {
            threads: NonZeroUsize::new(1).unwrap(),
        }
    }

    /// Exactly `n` threads; `0` means auto-detect.
    pub fn threads(n: usize) -> Self {
        match NonZeroUsize::new(n) {
            Some(t) => Parallelism { threads: t },
            None => Self::auto(),
        }
    }

    /// The configured thread count.
    pub fn get(&self) -> usize {
        self.threads.get()
    }

    /// True when no worker threads will be spawned.
    pub fn is_sequential(&self) -> bool {
        self.threads.get() == 1
    }

    /// Map `f` over `items`, preserving input order in the output.
    ///
    /// Sequential when `threads == 1` or the input is small; otherwise the
    /// slice is cut into at most `threads` contiguous chunks, each scored
    /// on its own scoped thread, and the per-chunk outputs are stitched
    /// back together in chunk order. Identical output to
    /// `items.iter().map(f).collect()` for any thread count.
    pub fn map_slice<T, O, F>(&self, items: &[T], f: F) -> Vec<O>
    where
        T: Sync,
        O: Send,
        F: Fn(&T) -> O + Sync,
    {
        self.map_indices(items.len(), |i| f(&items[i]))
    }

    /// Map `f` over `0..n`, preserving index order in the output.
    ///
    /// The workhorse behind every parallel stage: disjoint index ranges
    /// per thread, outputs concatenated in range order.
    pub fn map_indices<O, F>(&self, n: usize, f: F) -> Vec<O>
    where
        O: Send,
        F: Fn(usize) -> O + Sync,
    {
        let threads = self.threads.get().min(n.max(1));
        if threads == 1 || n < PARALLEL_CUTOFF {
            return (0..n).map(f).collect();
        }
        // Contiguous ranges: chunk c covers [c*chunk, min((c+1)*chunk, n)).
        let chunk = n.div_ceil(threads);
        let mut parts: Vec<Vec<O>> = Vec::with_capacity(threads);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|c| {
                    let lo = c * chunk;
                    let hi = ((c + 1) * chunk).min(n);
                    let f = &f;
                    scope.spawn(move || (lo..hi).map(f).collect::<Vec<O>>())
                })
                .collect();
            for h in handles {
                parts.push(h.join().expect("parallel map worker panicked"));
            }
        });
        let mut out = Vec::with_capacity(n);
        for p in parts {
            out.extend(p);
        }
        out
    }

    /// Run `f` once per chunk of `0..n` (at most `threads` chunks) and
    /// return each chunk's result **in chunk order**. Used by stages that
    /// reduce per-shard results themselves (e.g. collapse candidate pairs
    /// feeding one union-find reducer).
    pub fn map_chunks<O, F>(&self, n: usize, f: F) -> Vec<O>
    where
        O: Send,
        F: Fn(std::ops::Range<usize>) -> O + Sync,
    {
        let threads = self.threads.get().min(n.max(1));
        if threads == 1 || n < PARALLEL_CUTOFF {
            return vec![f(0..n)];
        }
        let chunk = n.div_ceil(threads);
        let mut parts: Vec<O> = Vec::with_capacity(threads);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|c| {
                    let lo = c * chunk;
                    let hi = ((c + 1) * chunk).min(n);
                    let f = &f;
                    scope.spawn(move || f(lo..hi))
                })
                .collect();
            for h in handles {
                parts.push(h.join().expect("parallel chunk worker panicked"));
            }
        });
        parts
    }
}

impl Default for Parallelism {
    /// Defaults to [`Parallelism::auto`].
    fn default() -> Self {
        Self::auto()
    }
}

/// Below this many items the spawn overhead outweighs any win; stay
/// sequential. Chosen conservatively (scoped-thread spawn is ~10µs).
const PARALLEL_CUTOFF: usize = 64;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_and_parallel_agree() {
        let items: Vec<u64> = (0..1000).collect();
        let seq = Parallelism::sequential().map_slice(&items, |&x| x * 3 + 1);
        for t in [2, 3, 4, 8] {
            let par = Parallelism::threads(t).map_slice(&items, |&x| x * 3 + 1);
            assert_eq!(seq, par, "threads={t}");
        }
    }

    #[test]
    fn map_indices_order() {
        let out = Parallelism::threads(4).map_indices(500, |i| i * i);
        assert_eq!(out.len(), 500);
        assert!(out.iter().enumerate().all(|(i, &v)| v == i * i));
    }

    #[test]
    fn chunks_cover_range_in_order() {
        let ranges = Parallelism::threads(3).map_chunks(100, |r| r);
        let flat: Vec<usize> = ranges.into_iter().flatten().collect();
        assert_eq!(flat, (0..100).collect::<Vec<_>>());
        // Sequential fallback yields one chunk.
        let one = Parallelism::sequential().map_chunks(100, |r| r);
        assert_eq!(one, vec![0..100]);
    }

    #[test]
    fn zero_means_auto() {
        assert!(Parallelism::threads(0).get() >= 1);
        assert_eq!(Parallelism::threads(7).get(), 7);
        assert!(Parallelism::sequential().is_sequential());
    }

    #[test]
    fn tiny_inputs_stay_sequential() {
        // No panic and correct results below the cutoff.
        let out = Parallelism::threads(8).map_indices(3, |i| i + 1);
        assert_eq!(out, vec![1, 2, 3]);
        let empty = Parallelism::threads(4).map_indices(0, |i| i);
        assert!(empty.is_empty());
    }
}
