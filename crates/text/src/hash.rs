//! FNV-1a hashing used to intern tokens and blocking keys.
//!
//! The deduplication pipeline hashes millions of short strings (words,
//! 3-grams, composite blocking keys). FNV-1a is a tiny, allocation-free
//! hash that is fast for short inputs; HashDoS resistance is irrelevant
//! here because all hashed data is generated or loaded by the caller.

/// An interned token: the 64-bit FNV-1a hash of its text.
///
/// Collisions are possible in principle (2^-64 per pair) but harmless for
/// similarity estimation and blocking: a collision can only make two
/// records look *more* similar, and every collapse decision that matters is
/// re-checked by the predicate itself, not by the hash.
pub type Token = u64;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a hash of a byte slice.
#[inline]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// FNV-1a hash of a string.
#[inline]
pub fn hash_str(s: &str) -> Token {
    fnv1a(s.as_bytes())
}

/// Combine two hashes into one (used for composite blocking keys such as
/// `(school_code, class)` or `(field_id, token)`).
#[inline]
pub fn combine(a: u64, b: u64) -> u64 {
    // Standard 64-bit hash-combine: xor with a phi-derived odd constant and
    // the shifted partner so that `combine(a, b) != combine(b, a)`.
    a ^ (b
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(a << 6)
        .wrapping_add(a >> 2))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_known_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn hash_str_matches_bytes() {
        assert_eq!(hash_str("hello"), fnv1a(b"hello"));
    }

    #[test]
    fn combine_is_order_sensitive() {
        let (a, b) = (hash_str("x"), hash_str("y"));
        assert_ne!(combine(a, b), combine(b, a));
        assert_ne!(combine(a, b), a);
    }

    #[test]
    fn distinct_strings_distinct_hashes() {
        // Smoke test over a batch of short strings; FNV-1a should not
        // collide on anything this small.
        let words: Vec<String> = (0..10_000).map(|i| format!("tok{i}")).collect();
        let mut hashes: Vec<u64> = words.iter().map(|w| hash_str(w)).collect();
        hashes.sort_unstable();
        hashes.dedup();
        assert_eq!(hashes.len(), 10_000);
    }
}
