#![warn(missing_docs)]

//! String similarity and indexing substrate for `topk-dedup`.
//!
//! This crate provides everything the deduplication layers need to look at
//! text: normalization, tokenization (words, character q-grams, initials),
//! corpus-level IDF statistics, an inverted index used for canopy/candidate
//! retrieval, and the similarity functions used by the EDBT'09 paper
//! (*Efficient Top-K Count Queries over Imprecise Duplicates*, §6.1):
//! Jaccard, overlap, Dice, TF-IDF cosine, Levenshtein, Jaro and
//! Jaro-Winkler, plus the paper's custom author/co-author similarities
//! (those live in `topk-predicates`, built from the kernels here).
//!
//! # Design notes
//!
//! Tokens are interned as 64-bit FNV-1a hashes ([`Token`]). Token multisets
//! are kept sorted ([`TokenSet`]) so that intersections, unions, and
//! weighted dot products are linear merges with no hashing on the hot path.
//!
//! # Example
//!
//! ```
//! use topk_text::{normalize, tokenize, sim};
//!
//! let a = tokenize::word_set(&normalize::normalize("J. K. Rowling"));
//! let b = tokenize::word_set(&normalize::normalize("JK Rowling!"));
//! assert!(sim::jaccard(&a, &b) > 0.0);
//! ```

pub mod hash;
pub mod idf;
pub mod index;
pub mod normalize;
pub mod parallel;
pub mod sim;
pub mod stopwords;
pub mod tokenize;

pub use hash::{fnv1a, Token};
pub use idf::CorpusStats;
pub use index::InvertedIndex;
pub use parallel::Parallelism;
pub use tokenize::TokenSet;
