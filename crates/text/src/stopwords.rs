//! Stop-word lists.
//!
//! The paper's Address predicates drop common address words ("street",
//! "house", …) before counting overlaps (§6.1.3). We ship that hand-compiled
//! style of list for addresses plus a small English list for titles, and a
//! [`StopWords`] type callers can build from their own vocabulary.

use crate::hash::{hash_str, Token};
use crate::tokenize::TokenSet;

/// A set of stop words, matched on interned tokens.
#[derive(Debug, Clone, Default)]
pub struct StopWords {
    set: TokenSet,
}

impl StopWords {
    /// Build from an iterator of words (normalized by the caller).
    pub fn new<'a>(words: impl IntoIterator<Item = &'a str>) -> Self {
        StopWords {
            set: TokenSet::from_tokens(words.into_iter().map(hash_str).collect()),
        }
    }

    /// Is this token a stop word?
    #[inline]
    pub fn is_stop(&self, t: Token) -> bool {
        self.set.contains(t)
    }

    /// Is this word a stop word?
    #[inline]
    pub fn is_stop_word(&self, w: &str) -> bool {
        self.set.contains(hash_str(w))
    }

    /// Remove stop words from a token set.
    pub fn filter(&self, ts: &TokenSet) -> TokenSet {
        TokenSet::from_tokens(
            ts.as_slice()
                .iter()
                .copied()
                .filter(|t| !self.is_stop(*t))
                .collect(),
        )
    }

    /// Number of stop words in the list.
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// True when the list is empty.
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }
}

/// Common words in postal addresses, in the spirit of the hand-compiled
/// list the paper used for the Pune address dataset.
pub const ADDRESS_STOP_WORDS: &[&str] = &[
    "street",
    "st",
    "road",
    "rd",
    "lane",
    "ln",
    "house",
    "flat",
    "apartment",
    "apt",
    "block",
    "plot",
    "near",
    "opp",
    "opposite",
    "behind",
    "main",
    "cross",
    "nagar",
    "colony",
    "society",
    "chowk",
    "peth",
    "marg",
    "floor",
    "no",
    "number",
    "building",
    "bldg",
    "sector",
    "phase",
    "area",
    "east",
    "west",
    "north",
    "south",
    "new",
    "old",
];

/// Common English function words, used for citation titles.
pub const ENGLISH_STOP_WORDS: &[&str] = &[
    "a", "an", "the", "of", "on", "in", "for", "and", "or", "to", "with", "by", "at", "from", "is",
    "are", "as", "its",
];

/// Stock address stop-word list.
pub fn address_stopwords() -> StopWords {
    StopWords::new(ADDRESS_STOP_WORDS.iter().copied())
}

/// Stock English stop-word list.
pub fn english_stopwords() -> StopWords {
    StopWords::new(ENGLISH_STOP_WORDS.iter().copied())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenize::word_set;

    #[test]
    fn filters_address_words() {
        let sw = address_stopwords();
        let ts = word_set("12 mg road pune");
        let filtered = sw.filter(&ts);
        assert_eq!(filtered.len(), 3); // "road" dropped
        assert!(sw.is_stop_word("street"));
        assert!(!sw.is_stop_word("pune"));
    }

    #[test]
    fn empty_list() {
        let sw = StopWords::default();
        assert!(sw.is_empty());
        let ts = word_set("a b");
        assert_eq!(sw.filter(&ts).len(), 2);
    }

    #[test]
    fn len_counts_words() {
        let sw = StopWords::new(["x", "y", "x"]);
        assert_eq!(sw.len(), 2);
    }
}
