//! Text normalization applied before any tokenization.
//!
//! All record fields pass through [`normalize`] once, when a dataset is
//! loaded, so downstream similarity kernels can assume lowercase ASCII-ish
//! text with single-space separators and no punctuation.

/// Lowercase, replace punctuation with spaces, and collapse whitespace.
///
/// Keeps alphanumerics (any alphabetic char, not just ASCII) and spaces.
/// Punctuation becomes a space so that `"J.K.Rowling"` tokenizes into
/// three words rather than one.
pub fn normalize(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut last_space = true;
    for ch in s.chars() {
        if ch.is_alphanumeric() {
            for lc in ch.to_lowercase() {
                out.push(lc);
            }
            last_space = false;
        } else if !last_space {
            out.push(' ');
            last_space = true;
        }
    }
    if out.ends_with(' ') {
        out.pop();
    }
    out
}

/// Normalize but keep digits out (useful for name fields where stray digits
/// are noise).
pub fn normalize_alpha(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut last_space = true;
    for ch in s.chars() {
        if ch.is_alphabetic() {
            for lc in ch.to_lowercase() {
                out.push(lc);
            }
            last_space = false;
        } else if !last_space {
            out.push(' ');
            last_space = true;
        }
    }
    if out.ends_with(' ') {
        out.pop();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lowercases_and_strips_punctuation() {
        assert_eq!(normalize("J.K. Rowling"), "j k rowling");
        assert_eq!(normalize("  A--B  "), "a b");
        assert_eq!(normalize(""), "");
        assert_eq!(normalize("..."), "");
    }

    #[test]
    fn keeps_digits() {
        assert_eq!(normalize("Flat 12B, MG Road"), "flat 12b mg road");
    }

    #[test]
    fn alpha_drops_digits() {
        assert_eq!(normalize_alpha("Flat 12B"), "flat b");
    }

    #[test]
    fn unicode_lowercase() {
        assert_eq!(normalize("Ünïted"), "ünïted");
    }
}
