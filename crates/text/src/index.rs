//! Inverted index for candidate (canopy) retrieval.
//!
//! The necessary-predicate join (§4.3) and the canopy baseline (§3) never
//! enumerate the full Cartesian product: each record posts its blocking
//! tokens here, and candidate mates are the union of posting lists,
//! optionally filtered by a minimum number of shared tokens.

use std::collections::HashMap;

use crate::hash::Token;
use crate::tokenize::TokenSet;

/// Inverted index from token to the ids of items containing it.
///
/// Ids are caller-assigned `u32`s (record or group indices).
#[derive(Debug, Clone, Default)]
pub struct InvertedIndex {
    postings: HashMap<Token, Vec<u32>>,
    items: usize,
}

impl InvertedIndex {
    /// Create an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Index `id` under every token of `ts`. Ids should be inserted in
    /// non-decreasing order for posting lists to stay sorted (all call
    /// sites insert sequentially); this keeps candidate merging cheap.
    pub fn insert(&mut self, id: u32, ts: &TokenSet) {
        for &t in ts.as_slice() {
            self.postings.entry(t).or_default().push(id);
        }
        self.items += 1;
    }

    /// Number of items inserted.
    pub fn len(&self) -> usize {
        self.items
    }

    /// True when nothing has been inserted.
    pub fn is_empty(&self) -> bool {
        self.items == 0
    }

    /// Posting list for one token.
    pub fn postings(&self, t: Token) -> &[u32] {
        self.postings.get(&t).map_or(&[], |v| v.as_slice())
    }

    /// All distinct ids sharing at least `min_common` tokens with `ts`,
    /// excluding `self_id` if provided. Candidates are returned sorted.
    pub fn candidates(&self, ts: &TokenSet, min_common: usize, self_id: Option<u32>) -> Vec<u32> {
        let mut hits: Vec<u32> = Vec::new();
        for &t in ts.as_slice() {
            if let Some(list) = self.postings.get(&t) {
                hits.extend_from_slice(list);
            }
        }
        hits.sort_unstable();
        let mut out = Vec::new();
        let mut i = 0;
        while i < hits.len() {
            let id = hits[i];
            let mut j = i + 1;
            while j < hits.len() && hits[j] == id {
                j += 1;
            }
            if j - i >= min_common && Some(id) != self_id {
                out.push(id);
            }
            i = j;
        }
        out
    }

    /// Like [`candidates`](Self::candidates) but with counts of shared
    /// tokens per candidate.
    pub fn candidates_with_counts(&self, ts: &TokenSet, self_id: Option<u32>) -> Vec<(u32, usize)> {
        let mut hits: Vec<u32> = Vec::new();
        for &t in ts.as_slice() {
            if let Some(list) = self.postings.get(&t) {
                hits.extend_from_slice(list);
            }
        }
        hits.sort_unstable();
        let mut out = Vec::new();
        let mut i = 0;
        while i < hits.len() {
            let id = hits[i];
            let mut j = i + 1;
            while j < hits.len() && hits[j] == id {
                j += 1;
            }
            if Some(id) != self_id {
                out.push((id, j - i));
            }
            i = j;
        }
        out
    }

    /// Number of distinct tokens indexed.
    pub fn vocab_size(&self) -> usize {
        self.postings.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenize::word_set;

    fn index() -> InvertedIndex {
        let mut ix = InvertedIndex::new();
        ix.insert(0, &word_set("alpha beta gamma"));
        ix.insert(1, &word_set("beta gamma delta"));
        ix.insert(2, &word_set("epsilon zeta"));
        ix
    }

    #[test]
    fn finds_overlapping_items() {
        let ix = index();
        let q = word_set("beta gamma");
        assert_eq!(ix.candidates(&q, 1, None), vec![0, 1]);
        assert_eq!(ix.candidates(&q, 2, None), vec![0, 1]);
        assert!(ix.candidates(&word_set("nothing"), 1, None).is_empty());
    }

    #[test]
    fn min_common_filters() {
        let ix = index();
        let q = word_set("alpha delta");
        // item 0 shares alpha, item 1 shares delta — 1 token each.
        assert_eq!(ix.candidates(&q, 1, None), vec![0, 1]);
        assert!(ix.candidates(&q, 2, None).is_empty());
    }

    #[test]
    fn excludes_self() {
        let ix = index();
        let q = word_set("alpha beta gamma");
        assert_eq!(ix.candidates(&q, 1, Some(0)), vec![1]);
    }

    #[test]
    fn counts_are_correct() {
        let ix = index();
        let q = word_set("beta gamma delta");
        let cc = ix.candidates_with_counts(&q, None);
        assert_eq!(cc, vec![(0, 2), (1, 3)]);
    }

    #[test]
    fn sizes() {
        let ix = index();
        assert_eq!(ix.len(), 3);
        assert!(!ix.is_empty());
        assert_eq!(ix.vocab_size(), 6);
        assert_eq!(ix.postings(crate::hash::hash_str("beta")), &[0, 1]);
    }
}
