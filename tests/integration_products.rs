//! Cross-crate integration: the comparison-shopping scenario — which
//! products have the most (review-weighted) offers, despite model-number
//! re-segmentation.

use topk_core::{deduplicate, TopKQuery};
use topk_datagen::{generate_products, ProductConfig};
use topk_predicates::product_predicates;
use topk_records::{pairwise_f1, tokenize_dataset, FieldId, TokenizedRecord};

fn scorer(a: &TokenizedRecord, b: &TokenizedRecord) -> f64 {
    let title = FieldId(0);
    let squash = |t: &str| -> String { t.chars().filter(|c| c.is_alphanumeric()).collect() };
    let (ta, tb) = (a.field(title), b.field(title));
    // model-number bridge: squashed prefix agreement
    let (sa, sb) = (squash(&ta.text), squash(&tb.text));
    let prefix = sa
        .chars()
        .zip(sb.chars())
        .take_while(|(x, y)| x == y)
        .count();
    let prefix_frac = prefix as f64 / sa.len().min(sb.len()).max(1) as f64;
    let gram = topk_text::sim::overlap_coefficient(&ta.qgrams3, &tb.qgrams3);
    0.5 * prefix_frac + 0.5 * gram - 0.62
}

#[test]
fn product_topk_finds_popular_products() {
    let data = generate_products(&ProductConfig {
        n_products: 100,
        n_records: 800,
        ..Default::default()
    });
    let toks = tokenize_dataset(&data);
    let stack = product_predicates(data.schema());
    let truth = data.truth().unwrap();
    let res = TopKQuery::new(3, 1).run(&toks, &stack, &scorer);
    assert_eq!(res.answers[0].groups.len(), 3);
    // top group is dominated by one product
    let top = &res.answers[0].groups[0];
    let mut by_entity = std::collections::HashMap::new();
    for &r in &top.records {
        *by_entity.entry(truth.label(r as usize)).or_insert(0usize) += 1;
    }
    let max = by_entity.values().copied().max().unwrap();
    assert!(
        max * 10 >= top.records.len() * 8,
        "top product group only {max}/{} pure",
        top.records.len()
    );
}

#[test]
fn product_dedup_beats_surface_grouping() {
    let data = generate_products(&ProductConfig {
        n_products: 80,
        n_records: 500,
        ..Default::default()
    });
    let toks = tokenize_dataset(&data);
    let stack = product_predicates(data.schema());
    let truth = data.truth().unwrap();
    let res = deduplicate(&toks, &stack, &scorer, -1.0);
    let f1 = pairwise_f1(&res.partition, truth).f1;
    // Surface-exact grouping (titles equal) as the naive baseline.
    let mut by_title = std::collections::HashMap::new();
    let mut next = 0u32;
    let labels: Vec<u32> = data
        .records()
        .iter()
        .map(|r| {
            *by_title
                .entry(r.field(FieldId(0)).to_string())
                .or_insert_with(|| {
                    let v = next;
                    next += 1;
                    v
                })
        })
        .collect();
    let naive = topk_records::Partition::from_labels(labels);
    let f1_naive = pairwise_f1(&naive, truth).f1;
    assert!(
        f1 > f1_naive,
        "dedup F1 {f1:.3} should beat exact-title grouping {f1_naive:.3}"
    );
    assert!(f1 > 0.75, "dedup F1 {f1:.3} too low");
}
