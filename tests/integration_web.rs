//! Cross-crate integration: the web-mention scenario end-to-end — track
//! the most frequently mentioned organization despite acronym and
//! truncation noise.

use topk_core::{TopKQuery, TopKRankQuery};
use topk_datagen::{generate_web_mentions, WebConfig};
use topk_predicates::web_predicates;
use topk_records::{tokenize_dataset, FieldId, TokenizedRecord};

fn scorer(a: &TokenizedRecord, b: &TokenizedRecord) -> f64 {
    let name = FieldId(0);
    let ctx = FieldId(1);
    let (na, nb) = (a.field(name), b.field(name));
    // surface-form similarity
    let surface = topk_text::sim::overlap_coefficient(&na.qgrams3, &nb.qgrams3);
    // acronym bridge: one form is the initials string of the other
    let initials_of = |t: &str| -> String {
        t.split_whitespace()
            .filter_map(|w| w.chars().next())
            .collect()
    };
    let acro = na.text == initials_of(&nb.text) || nb.text == initials_of(&na.text);
    // context agreement
    let ctx_sim = topk_text::sim::jaccard(&a.field(ctx).words, &b.field(ctx).words);
    if acro {
        0.3 + ctx_sim
    } else {
        surface + 0.5 * ctx_sim - 0.6
    }
}

#[test]
fn web_pipeline_finds_most_mentioned_org() {
    let data = generate_web_mentions(&WebConfig {
        n_orgs: 100,
        n_records: 1_000,
        ..Default::default()
    });
    let toks = tokenize_dataset(&data);
    let stack = web_predicates(data.schema());
    let truth = data.truth().unwrap();

    let res = TopKQuery::new(3, 1).run(&toks, &stack, &scorer);
    assert_eq!(res.answers[0].groups.len(), 3);
    // The heaviest answer group should be dominated by the true most
    // frequent organization.
    let true_sizes = truth.group_sizes();
    let top_group = &res.answers[0].groups[0];
    let mut by_entity = std::collections::HashMap::new();
    for &r in &top_group.records {
        *by_entity.entry(truth.label(r as usize)).or_insert(0usize) += 1;
    }
    let (_, majority) = by_entity
        .iter()
        .max_by_key(|(_, &c)| c)
        .map(|(&e, &c)| (e, c))
        .unwrap();
    assert!(
        majority * 10 >= top_group.records.len() * 8,
        "top group should be >=80% one organization ({majority}/{})",
        top_group.records.len()
    );
    // and capture a decent share of that organization's true mentions
    assert!(
        top_group.records.len() * 3 >= true_sizes[0],
        "top group only has {} of the leader's ~{} mentions",
        top_group.records.len(),
        true_sizes[0]
    );
}

#[test]
fn web_rank_query_is_consistent() {
    let data = generate_web_mentions(&WebConfig {
        n_orgs: 80,
        n_records: 900,
        ..Default::default()
    });
    let toks = tokenize_dataset(&data);
    let stack = web_predicates(data.schema());
    let res = TopKRankQuery::new(5).run(&toks, &stack);
    assert!(!res.entries.is_empty());
    for w in res.entries.windows(2) {
        assert!(w[0].weight >= w[1].weight);
    }
    for e in &res.entries {
        assert!(e.upper_bound >= e.weight - 1e-9);
    }
}
