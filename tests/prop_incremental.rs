//! Property test: the incremental collapse is exactly the batch collapse
//! on arbitrary insertion prefixes of generated datasets.

use proptest::prelude::*;

use topk_core::IncrementalDedup;
use topk_datagen::{generate_addresses, AddressConfig};
use topk_predicates::{address_predicates, collapse};
use topk_records::{tokenize_dataset, TokenizedRecord};

fn normalized_groups(groups: Vec<Vec<u32>>) -> Vec<Vec<u32>> {
    let mut gs = groups;
    for g in &mut gs {
        g.sort_unstable();
    }
    gs.sort();
    gs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn incremental_equals_batch_on_any_prefix(
        seed in 0u64..300,
        prefix_frac in 0.2f64..1.0,
    ) {
        let data = generate_addresses(&AddressConfig {
            n_entities: 40,
            n_records: 180,
            seed,
            ..Default::default()
        });
        let toks = tokenize_dataset(&data);
        let stack = address_predicates(data.schema());
        let s = stack.levels[0].0.as_ref();

        let prefix = ((toks.len() as f64 * prefix_frac) as usize).max(1);
        let mut inc = IncrementalDedup::new();
        for t in toks.iter().take(prefix) {
            inc.insert(t.clone(), s);
        }

        let refs: Vec<&TokenizedRecord> = toks.iter().take(prefix).collect();
        let weights: Vec<f64> = refs.iter().map(|t| t.weight()).collect();
        let batch = collapse(&refs, &weights, s);

        prop_assert_eq!(inc.group_count(), batch.len());
        let inc_sets = normalized_groups(inc.groups().into_iter().map(|g| g.members).collect());
        let batch_sets = normalized_groups(batch.into_iter().map(|g| g.members).collect());
        prop_assert_eq!(inc_sets, batch_sets);
    }

    #[test]
    fn incremental_weights_match_inputs(seed in 0u64..300) {
        let data = generate_addresses(&AddressConfig {
            n_entities: 30,
            n_records: 120,
            seed,
            ..Default::default()
        });
        let toks = tokenize_dataset(&data);
        let stack = address_predicates(data.schema());
        let s = stack.levels[0].0.as_ref();
        let mut inc = IncrementalDedup::new();
        for t in &toks {
            inc.insert(t.clone(), s);
        }
        let total_in: f64 = toks.iter().map(|t| t.weight()).sum();
        let total_out: f64 = inc.groups().iter().map(|g| g.weight).sum();
        prop_assert!((total_in - total_out).abs() < 1e-6);
    }
}
