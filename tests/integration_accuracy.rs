//! Cross-crate integration: the Figure-7 accuracy claim at test scale —
//! Embedding+Segmentation tracks the exact grouping far better than the
//! transitive-closure baseline.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use topk_cluster::{
    exact_correlation_clustering, greedy_embedding, segment_topk, transitive_closure,
    FeatureExtractor, PairScores, SegmentConfig,
};
use topk_datagen::{small_dataset, SmallDatasetKind};
use topk_records::{pairwise_f1, tokenize_dataset, FieldId, Partition};

#[test]
fn segmentation_matches_exact_grouping_on_address_sample() {
    // The smallest Table-1 dataset (306 records) keeps debug-mode
    // runtime reasonable.
    let data = small_dataset(SmallDatasetKind::Address, 3);
    let toks = tokenize_dataset(&data);
    let truth = data.truth().unwrap();

    // Train a logistic scorer on half the groups (paper §6.4).
    let fields: Vec<FieldId> = (0..data.schema().arity()).map(FieldId).collect();
    let fx = FeatureExtractor::new(fields, &toks);
    let mut examples = Vec::new();
    for (gi, g) in truth.groups().iter().enumerate() {
        if gi % 2 == 0 && g.len() >= 2 {
            for w in g.windows(2) {
                examples.push((fx.features(&toks[w[0]], &toks[w[1]]), true));
            }
        }
    }
    let mut rng = StdRng::seed_from_u64(9);
    let n = toks.len();
    let need = examples.len() * 3;
    let mut have = 0;
    while have < need {
        let (i, j) = (rng.random_range(0..n), rng.random_range(0..n));
        if i != j && !truth.same_group(i, j) {
            examples.push((fx.features(&toks[i], &toks[j]), false));
            have += 1;
        }
    }
    let model = topk_cluster::LogisticModel::train(&examples, 200, 0.8, 1e-4);

    let mut pairs = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            pairs.push((i, j, model.score(&fx.features(&toks[i], &toks[j]))));
        }
    }
    let ps = PairScores::from_pairs(n, &pairs);

    let exact = exact_correlation_clustering(&ps);
    let order = greedy_embedding(&ps, 0.6);
    let permuted = ps.permute(&order);
    let answers = segment_topk(
        &permuted,
        &SegmentConfig {
            k: 0,
            r: 1,
            max_segment_len: 96,
            ell_stride: 4,
        },
    );
    let seg_embedded = answers[0].partition();
    let mut labels = vec![0u32; n];
    for (pos, &orig) in order.iter().enumerate() {
        labels[orig as usize] = seg_embedded.label(pos);
    }
    let seg = Partition::from_labels(labels);
    let tc = transitive_closure(&ps);

    let f1_seg = pairwise_f1(&seg, &exact.partition).f1;
    let f1_tc = pairwise_f1(&tc, &exact.partition).f1;

    // Paper: segmentation ≥ 99% agreement with exact; closure 92-96%.
    assert!(
        f1_seg > 0.95,
        "segmentation F1 vs exact too low: {f1_seg:.3}"
    );
    assert!(
        f1_seg >= f1_tc - 0.01,
        "segmentation ({f1_seg:.3}) should not lose to closure ({f1_tc:.3})"
    );

    // And both should recover the ground truth reasonably well — the
    // scorer is trained on this very distribution.
    let f1_truth = pairwise_f1(&seg, truth).f1;
    assert!(f1_truth > 0.8, "segmentation vs truth: {f1_truth:.3}");
}
