//! Loopback integration test for the `topk-service` server.
//!
//! Spins a real [`Server`] on an ephemeral port (`127.0.0.1:0`), streams
//! a generated student dataset through a real [`Client`] in several
//! batches, and asserts the big claims made in `docs/SERVICE.md`:
//!
//! 1. **Batch identity** — once the stream is fully ingested, `topk` and
//!    `topr` response lines are *byte-identical* to the batch pipeline
//!    (`PrunedDedup` / `TopKRankQuery`) run over the same records and
//!    rendered through the same JSON serializer. The group computation
//!    is genuinely independent on the two sides: served answers come
//!    from `IncrementalDedup`'s maintained collapse, batch answers from
//!    Algorithm 2 from scratch.
//! 2. **Snapshot fidelity** — snapshot → restore into a *fresh* server
//!    reproduces those answer lines exactly.
//! 3. **Cache behaviour** — a repeated query is a cache hit, and
//!    ingestion invalidates the cache (hit counters visible in `stats`).
//!
//! A watchdog thread hard-kills the process if the test wedges (a hung
//! accept loop would otherwise block `cargo test` forever).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use topk_core::{Parallelism, PipelineConfig, PrunedDedup, TopKRankQuery};
use topk_records::{FieldId, TokenizedRecord};
use topk_service::json::{obj as obj_json, Json};
use topk_service::protocol::ok_response;
use topk_service::{generic_stack, Client, Engine, EngineConfig, Server, ServerConfig};

/// Hard ceiling on the whole test; generous — the test normally runs in
/// well under a second.
const WATCHDOG_SECS: u64 = 90;

fn start_watchdog() -> Arc<AtomicBool> {
    let done = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&done);
    std::thread::spawn(move || {
        std::thread::sleep(std::time::Duration::from_secs(WATCHDOG_SECS));
        if !flag.load(Ordering::SeqCst) {
            eprintln!("serve_roundtrip: watchdog fired after {WATCHDOG_SECS}s, aborting");
            std::process::exit(124);
        }
    });
    done
}

/// The generated corpus as raw ingest rows (field texts + weight), in
/// dataset order.
fn sample_rows() -> Vec<(Vec<String>, f64)> {
    let d = topk_datagen::generate_students(&topk_datagen::StudentConfig {
        n_students: 40,
        n_records: 200,
        ..Default::default()
    });
    d.records()
        .iter()
        .map(|r| (r.fields().to_vec(), r.weight()))
        .collect()
}

/// Tokenize rows exactly like `Engine::ingest` does (normalize, then
/// tokenize once).
fn tokenize_rows(rows: &[(Vec<String>, f64)]) -> Vec<TokenizedRecord> {
    rows.iter()
        .map(|(fields, weight)| {
            let normalized: Vec<String> = fields
                .iter()
                .map(|f| topk_text::normalize::normalize(f))
                .collect();
            TokenizedRecord::from_fields(&normalized, *weight)
        })
        .collect()
}

/// Render groups the way `Engine::query_topk` renders them.
fn render_topk(groups: &[topk_core::FinalGroup], toks: &[TokenizedRecord], k: usize) -> String {
    let field = FieldId(0);
    let items: Vec<Json> = groups
        .iter()
        .take(k)
        .enumerate()
        .map(|(rank, g)| {
            obj_json(vec![
                ("rank", Json::Num((rank + 1) as f64)),
                ("weight", Json::Num(g.weight)),
                ("size", Json::Num(g.members.len() as f64)),
                ("rep_id", Json::Num(g.rep as f64)),
                (
                    "rep",
                    Json::Str(toks[g.rep as usize].field(field).text.clone()),
                ),
            ])
        })
        .collect();
    ok_response(obj_json(vec![("groups", Json::Arr(items))]))
}

/// Compute the batch-pipeline `topk` answer line for `rows`.
fn batch_topk_line(toks: &[TokenizedRecord], k: usize) -> String {
    let stack = generic_stack(toks, FieldId(0), 30, 0.6);
    let out = PrunedDedup::new(
        toks,
        &stack,
        PipelineConfig {
            k,
            refine_iterations: 2,
            mode: Default::default(),
            parallelism: Parallelism::sequential(),
        },
    )
    .run();
    render_topk(&out.groups, toks, k)
}

/// Compute the batch-pipeline `topr` answer line for `rows`.
fn batch_topr_line(toks: &[TokenizedRecord], k: usize) -> String {
    let stack = generic_stack(toks, FieldId(0), 30, 0.6);
    let mut q = TopKRankQuery::new(k);
    q.parallelism = Parallelism::sequential();
    let res = q.run(toks, &stack);
    let field = FieldId(0);
    let entries: Vec<Json> = res
        .entries
        .iter()
        .enumerate()
        .map(|(rank, e)| {
            obj_json(vec![
                ("rank", Json::Num((rank + 1) as f64)),
                ("weight", Json::Num(e.weight)),
                ("upper_bound", Json::Num(e.upper_bound)),
                ("size", Json::Num(e.records.len() as f64)),
                ("rep_id", Json::Num(e.rep as f64)),
                (
                    "rep",
                    Json::Str(toks[e.rep as usize].field(field).text.clone()),
                ),
            ])
        })
        .collect();
    ok_response(obj_json(vec![
        ("entries", Json::Arr(entries)),
        ("certified", Json::Bool(res.certified)),
    ]))
}

fn spawn_server() -> (
    std::net::SocketAddr,
    std::thread::JoinHandle<Result<(), String>>,
) {
    spawn_server_with(ServerConfig::default())
}

fn spawn_server_with(
    config: ServerConfig,
) -> (
    std::net::SocketAddr,
    std::thread::JoinHandle<Result<(), String>>,
) {
    let engine = Arc::new(
        Engine::new(EngineConfig {
            parallelism: Parallelism::sequential(),
            ..Default::default()
        })
        .expect("engine"),
    );
    let mut server = Server::bind("127.0.0.1:0", engine).expect("bind ephemeral port");
    server.config = config;
    server.spawn()
}

fn counter(stats: &Json, name: &str) -> u64 {
    stats
        .get("metrics")
        .and_then(|m| m.get(name))
        .and_then(Json::as_usize)
        .unwrap_or_else(|| panic!("stats missing metrics.{name}: {stats}")) as u64
}

#[test]
fn served_answers_match_batch_and_survive_snapshot() {
    let done = start_watchdog();
    let rows = sample_rows();
    let toks = tokenize_rows(&rows);
    let k = 5;
    let expected_topk = batch_topk_line(&toks, k);
    let expected_topr = batch_topr_line(&toks, k);

    let (addr, handle) = spawn_server();
    let mut c = Client::connect(&addr.to_string()).expect("connect");
    c.ping().expect("ping");

    // Stream the corpus in uneven batches; no query until it's all in.
    let mut sent = 0u64;
    for chunk in rows.chunks(37) {
        sent = c.ingest_batch(chunk).expect("ingest");
    }
    assert_eq!(sent, rows.len() as u64, "generation counts every record");

    // 1. Byte-identical to the batch pipeline.
    let served_topk = c
        .request_raw(&format!(r#"{{"cmd":"topk","k":{k}}}"#))
        .expect("topk");
    assert_eq!(served_topk, expected_topk, "served topk != batch topk");
    let served_topr = c
        .request_raw(&format!(r#"{{"cmd":"topr","k":{k}}}"#))
        .expect("topr");
    assert_eq!(served_topr, expected_topr, "served topr != batch topr");

    // 3a. The repeat query is answered from the cache, byte-identically.
    let stats = c.stats().expect("stats");
    // A standalone server is the primary of epoch 1 — `stats` and
    // `health` both pin the pair so a failed-over client can always
    // tell what it is talking to (docs/ROBUSTNESS.md).
    assert_eq!(stats.get("role").and_then(Json::as_str), Some("primary"));
    assert_eq!(stats.get("epoch").and_then(Json::as_usize), Some(1));
    let health = c.health().expect("health");
    assert_eq!(health.get("role").and_then(Json::as_str), Some("primary"));
    assert_eq!(health.get("epoch").and_then(Json::as_usize), Some(1));
    let hits_before = counter(&stats, "cache_hits");
    let repeat = c
        .request_raw(&format!(r#"{{"cmd":"topk","k":{k}}}"#))
        .expect("repeat topk");
    assert_eq!(repeat, expected_topk);
    let stats = c.stats().expect("stats");
    assert_eq!(counter(&stats, "cache_hits"), hits_before + 1);

    // 3b. Ingestion invalidates: the same query misses afterwards.
    let misses_before = counter(&stats, "cache_misses");
    c.ingest_batch(&[(vec!["zz unseen person".into(); rows[0].0.len()], 1.0)])
        .expect("ingest one more");
    c.topk(k).expect("topk after ingest");
    let stats = c.stats().expect("stats");
    assert_eq!(counter(&stats, "cache_misses"), misses_before + 1);

    // 2. Snapshot, restore into a fresh server, answers are identical.
    let dir = std::env::temp_dir().join("topk_serve_roundtrip");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let snap = dir.join("state.snap");
    c.snapshot(snap.to_str().unwrap()).expect("snapshot");
    let expected_after_ingest = c
        .request_raw(&format!(r#"{{"cmd":"topk","k":{k}}}"#))
        .expect("topk post-snapshot");
    c.shutdown().expect("shutdown");
    handle.join().expect("server thread").expect("server run");

    let (addr2, handle2) = spawn_server();
    let mut c2 = Client::connect(&addr2.to_string()).expect("connect 2");
    c2.restore(snap.to_str().unwrap()).expect("restore");
    let restored_topk = c2
        .request_raw(&format!(r#"{{"cmd":"topk","k":{k}}}"#))
        .expect("restored topk");
    assert_eq!(
        restored_topk, expected_after_ingest,
        "restored server answers differently"
    );
    let restored_topr = c2
        .request_raw(&format!(r#"{{"cmd":"topr","k":{k}}}"#))
        .expect("restored topr");
    assert!(restored_topr.starts_with(r#"{"ok":true,"entries":"#));
    c2.shutdown().expect("shutdown 2");
    handle2
        .join()
        .expect("server thread 2")
        .expect("server run 2");

    done.store(true, Ordering::SeqCst);
}

#[test]
fn protocol_errors_do_not_kill_the_connection() {
    let done = start_watchdog();
    let (addr, handle) = spawn_server();
    let mut c = Client::connect(&addr.to_string()).expect("connect");
    // A garbage line gets the error envelope, and the connection lives on.
    let raw = c.request_raw("this is not json").expect("raw");
    assert!(raw.contains(r#""ok":false"#), "{raw}");
    assert!(raw.contains(r#""code":"bad_json""#), "{raw}");
    let err = c.request(r#"{"cmd":"ingest"}"#).expect_err("bad ingest");
    assert!(err.starts_with("bad_request"), "{err}");
    // Invalid approx epsilons get the same uniform bad_request envelope:
    // wrong type, out of range, and the degenerate endpoints.
    for bad in [
        r#"{"cmd":"topk","k":2,"approx":"tight"}"#,
        r#"{"cmd":"topk","k":2,"approx":1.5}"#,
        r#"{"cmd":"topr","k":2,"approx":0}"#,
        r#"{"cmd":"topr","k":2,"approx":-0.1}"#,
    ] {
        let raw = c.request_raw(bad).expect("raw bad approx");
        assert!(raw.contains(r#""ok":false"#), "{bad} -> {raw}");
        assert!(raw.contains(r#""code":"bad_request""#), "{bad} -> {raw}");
    }
    // A valid epsilon on the same connection answers in the approx shape.
    c.ingest_batch(&[(vec!["approx probe".into()], 1.0)])
        .expect("ingest probe");
    let body = c.topk_approx(1, 0.5).expect("approx topk");
    assert_eq!(
        body.get("epsilon").and_then(Json::as_f64),
        Some(0.5),
        "{body}"
    );
    assert!(body.get("groups").is_some(), "{body}");
    // Still usable afterwards.
    c.ingest_batch(&[(vec!["still alive".into()], 1.0)])
        .expect("ingest");
    c.topk(1).expect("topk");
    c.shutdown().expect("shutdown");
    handle.join().expect("join").expect("run");
    done.store(true, Ordering::SeqCst);
}

/// Protocol edge cases against a server with tight robustness limits:
/// unknown commands, blank lines, oversized requests, and a half-open
/// connection that never completes a request. Each gets the documented
/// structured treatment — never a wedged server.
#[test]
fn protocol_edges_get_structured_treatment() {
    use std::io::{BufRead, BufReader, Read, Write};
    use std::net::TcpStream;
    use std::time::Duration;

    let done = start_watchdog();
    let (addr, handle) = spawn_server_with(ServerConfig {
        read_timeout: Duration::from_millis(800),
        write_timeout: Duration::from_millis(800),
        idle_timeout: Duration::from_millis(400),
        max_request_bytes: 1024,
        ..Default::default()
    });
    let addr = addr.to_string();

    // Unknown command: bad_request envelope naming the command.
    let mut c = Client::connect(&addr).expect("connect");
    let raw = c.request_raw(r#"{"cmd":"frobnicate"}"#).expect("raw");
    assert!(raw.contains(r#""code":"bad_request""#), "{raw}");
    assert!(raw.contains("unknown cmd"), "{raw}");

    // Malformed JSON: bad_json envelope (same connection still alive).
    let raw = c.request_raw(r#"{"cmd": "#).expect("raw");
    assert!(raw.contains(r#""code":"bad_json""#), "{raw}");

    // Blank lines are skipped, not answered: the first response on the
    // wire after an empty line belongs to the next real request.
    let stream = TcpStream::connect(&addr).expect("raw connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut w = stream.try_clone().unwrap();
    w.write_all(b"\n{\"cmd\":\"ping\"}\n").unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(
        line.contains(r#""ok":true"#),
        "blank line was answered: {line}"
    );
    drop((reader, w, stream));

    // Oversized request: structured `too_large` envelope, and the
    // engine never saw the batch.
    let big = format!(r#"{{"cmd":"ingest","fields":["{}"]}}"#, "x".repeat(4096));
    let raw = c.request_raw(&big).expect("oversized raw");
    assert!(raw.contains(r#""code":"too_large""#), "{raw}");
    let stats = c.stats().expect("stats");
    let records = stats.get("records").and_then(Json::as_usize);
    assert_eq!(records, Some(0), "oversized ingest was applied: {stats}");

    // Half-open peer: connect, never send a complete request. The idle
    // deadline must end the connection (timeout envelope and/or close)
    // instead of pinning a handler thread forever.
    let mut idle = TcpStream::connect(&addr).expect("idle connect");
    idle.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let started = std::time::Instant::now();
    let mut buf = Vec::new();
    idle.read_to_end(&mut buf).expect("read until close");
    let elapsed = started.elapsed();
    assert!(
        elapsed < Duration::from_secs(8),
        "half-open connection lived {elapsed:?}"
    );
    let text = String::from_utf8_lossy(&buf);
    if !text.is_empty() {
        assert!(text.contains(r#""code":"timeout""#), "{text}");
    }

    // Our own connection also sat idle past the deadline during the
    // half-open wait; the idempotent ping reconnects transparently,
    // then the fresh connection carries the shutdown.
    c.ping().expect("ping after idle");
    c.shutdown().expect("shutdown");
    handle.join().expect("join").expect("run");
    done.store(true, Ordering::SeqCst);
}

/// Span collection is process-global state toggled over the wire; this
/// pins that flipping it on/off and draining buffered spans — from
/// separate connections, concurrently with live queries — never
/// corrupts the protocol, panics a handler, or wedges the server.
/// Every in-flight query still gets its well-formed answer, and the
/// server stays fully coherent afterwards.
#[test]
fn concurrent_trace_toggles_and_drains_do_not_corrupt_the_protocol() {
    let done = start_watchdog();
    let (addr, handle) = spawn_server();
    let mut c = Client::connect(&addr.to_string()).expect("connect");
    c.ingest_batch(&sample_rows()[..50]).expect("ingest");

    const ROUNDS: usize = 40;
    let addr = addr.to_string();
    std::thread::scope(|s| {
        // Query workers: exact answers must keep flowing throughout.
        for w in 0..2 {
            let addr = &addr;
            s.spawn(move || {
                let mut c = Client::connect(addr).expect("worker connect");
                for i in 0..ROUNDS {
                    let body = if (w + i) % 2 == 0 {
                        c.topk(3).expect("topk under trace churn")
                    } else {
                        c.topr(3).expect("topr under trace churn")
                    };
                    assert!(
                        body.get("groups").or_else(|| body.get("entries")).is_some(),
                        "{body}"
                    );
                }
            });
        }
        // Toggler: flips collection on and off as fast as it can.
        let toggler_addr = &addr;
        s.spawn(move || {
            let mut c = Client::connect(toggler_addr).expect("toggler connect");
            for i in 0..ROUNDS {
                let resp = c
                    .request_raw(&format!(r#"{{"cmd":"trace","enabled":{}}}"#, i % 2 == 0))
                    .expect("toggle");
                assert!(resp.contains(r#""ok":true"#), "{resp}");
            }
        });
        // Drainer: destructive inline reads racing both of the above.
        let drainer_addr = &addr;
        s.spawn(move || {
            let mut c = Client::connect(drainer_addr).expect("drainer connect");
            for _ in 0..ROUNDS {
                let v = c.trace_drain_inline(None).expect("inline drain");
                assert!(
                    v.get("spans").and_then(Json::as_arr).is_some(),
                    "drain response lost its spans array: {v}"
                );
            }
        });
    });

    // Afterwards: collection off, one final drain answers cleanly, and
    // the engine still serves queries on the original connection.
    let final_drain = c
        .request_raw(r#"{"cmd":"trace","enabled":false,"inline":true}"#)
        .expect("final drain");
    assert!(final_drain.contains(r#""ok":true"#), "{final_drain}");
    c.topk(3).expect("topk after trace churn");
    c.shutdown().expect("shutdown");
    handle.join().expect("join").expect("run");
    done.store(true, Ordering::SeqCst);
}
