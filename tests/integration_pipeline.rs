//! Cross-crate integration: the PrunedDedup pipeline on all three
//! generated datasets, checking the paper's qualitative claims at test
//! scale: heavy collapse, m tracking K, strong pruning for small K.

use topk_core::{PipelineConfig, PrunedDedup};
use topk_predicates::{address_predicates, citation_predicates, student_predicates};
use topk_records::tokenize_dataset;

#[test]
fn citation_pipeline_prunes_hard_for_small_k() {
    let data = topk_datagen::generate_citations(&topk_datagen::CitationConfig {
        n_authors: 500,
        n_citations: 2_500,
        ..Default::default()
    });
    let toks = tokenize_dataset(&data);
    let stack = citation_predicates(data.schema(), &toks);
    let out = PrunedDedup::new(
        &toks,
        &stack,
        PipelineConfig {
            k: 1,
            ..Default::default()
        },
    )
    .run();
    // Small K must shrink the data dramatically (paper: to ~1%; allow
    // slack at test scale).
    assert!(
        out.stats.final_pct() < 30.0,
        "pruned to only {:.1}%",
        out.stats.final_pct()
    );
    // m should track K closely for K=1 (paper §6.2 tightness claim).
    let it = &out.stats.iterations[0];
    assert!(it.m <= 25, "m={} too loose for K=1", it.m);
    assert!(it.lower_bound >= 1.0);
}

#[test]
fn student_pipeline_monotone_in_k() {
    let data = topk_datagen::generate_students(&topk_datagen::StudentConfig {
        n_students: 300,
        n_records: 1_500,
        ..Default::default()
    });
    let toks = tokenize_dataset(&data);
    let stack = student_predicates(data.schema());
    let mut previous = 0usize;
    for k in [1usize, 5, 20, 80] {
        let out = PrunedDedup::new(
            &toks,
            &stack,
            PipelineConfig {
                k,
                ..Default::default()
            },
        )
        .run();
        let n_final = out.stats.final_group_count();
        assert!(
            n_final >= previous,
            "larger K must keep at least as many groups (K={k}: {n_final} < {previous})"
        );
        assert!(n_final >= k.min(toks.len()));
        previous = n_final;
    }
}

#[test]
fn address_pipeline_single_level() {
    let data = topk_datagen::generate_addresses(&topk_datagen::AddressConfig {
        n_entities: 300,
        n_records: 1_200,
        ..Default::default()
    });
    let toks = tokenize_dataset(&data);
    let stack = address_predicates(data.schema());
    let out = PrunedDedup::new(
        &toks,
        &stack,
        PipelineConfig {
            k: 5,
            ..Default::default()
        },
    )
    .run();
    assert_eq!(out.stats.iterations.len(), 1, "address stack has one level");
    assert!(out.stats.final_pct() < 60.0);
    // All surviving groups' weights are consistent with members.
    let weights = data.weights();
    for g in &out.groups {
        let sum: f64 = g.members.iter().map(|&m| weights[m as usize]).sum();
        assert!((sum - g.weight).abs() < 1e-6);
        assert!(g.members.contains(&g.rep));
    }
}

#[test]
fn collapse_never_merges_across_truth() {
    // Sufficient predicates must be sound: collapsed groups stay within
    // ground-truth entities on every dataset.
    let data = topk_datagen::generate_students(&topk_datagen::StudentConfig {
        n_students: 200,
        n_records: 900,
        ..Default::default()
    });
    let toks = tokenize_dataset(&data);
    let stack = student_predicates(data.schema());
    let truth = data.truth().unwrap();
    let out = PrunedDedup::new(
        &toks,
        &stack,
        PipelineConfig {
            k: 5,
            mode: topk_core::PruningMode::CanopyCollapse,
            ..Default::default()
        },
    )
    .run();
    for g in &out.groups {
        let first = truth.label(g.members[0] as usize);
        for &m in &g.members {
            assert_eq!(
                truth.label(m as usize),
                first,
                "collapse merged two distinct students"
            );
        }
    }
}
