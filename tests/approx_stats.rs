//! Statistical guarantees of the `topk-approx` sampler and intervals,
//! checked empirically on datagen corpora with ground truth.
//!
//! * **Unbiasedness**: the Horvitz–Thompson estimate of a true group's
//!   weight, averaged over many independent sketch seeds, lands within
//!   a few standard errors of the truth.
//! * **Coverage**: the nominal 95% confidence intervals contain the
//!   true group weight in at least 90% of (seed, group) trials.
//! * **Invariants** (property tests): intervals always bracket the
//!   estimate, and splitting a stream across sketches never changes
//!   the merged sample.
//!
//! Everything here is deterministic — fixed corpora, enumerated seeds —
//! so a failure is a real regression, not noise.

use proptest::prelude::*;
use topk_approx::{confidence_interval, merge_sketches, sample_size, Sketch};
use topk_predicates::collapse_partition_key;
use topk_records::{tokenize_dataset, FieldId, TokenizedRecord};

/// A labeled student corpus: tokenized records, ground-truth labels,
/// and per-record weights.
fn corpus() -> (Vec<TokenizedRecord>, Vec<u32>, Vec<f64>) {
    let data = topk_datagen::generate_students(&topk_datagen::StudentConfig {
        n_students: 200,
        n_records: 4_000,
        ..Default::default()
    });
    let labels = data
        .truth()
        .expect("students have ground truth")
        .labels()
        .to_vec();
    let weights = data.weights();
    let toks = tokenize_dataset(&data);
    (toks, labels, weights)
}

/// The bottom-m sample for one seed, as record ids.
fn draw(toks: &[TokenizedRecord], field: FieldId, seed: u64, m: usize) -> Vec<usize> {
    let mut sketch = Sketch::new(seed, m);
    for (rid, t) in toks.iter().enumerate() {
        sketch.offer(rid as u64, collapse_partition_key(&t.field(field).text), t);
    }
    merge_sketches([&sketch], m)
        .iter()
        .map(|e| e.rid as usize)
        .collect()
}

#[test]
fn ht_estimator_is_unbiased_over_seeds() {
    let (toks, labels, weights) = corpus();
    let field = FieldId(0);
    let m = sample_size(0.1); // 800 of 4000: p = 0.2
    let p = m as f64 / toks.len() as f64;
    // Target: the largest true group.
    let mut true_w = std::collections::HashMap::new();
    for (i, &l) in labels.iter().enumerate() {
        *true_w.entry(l).or_insert(0.0) += weights[i];
    }
    let (&target, &w_true) = true_w
        .iter()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .expect("nonempty corpus");
    assert!(w_true >= 20.0, "need a sizable head group, got {w_true}");
    let n_seeds = 200u64;
    let mut sum = 0.0;
    for seed in 0..n_seeds {
        let sampled_w: f64 = draw(&toks, field, seed, m)
            .into_iter()
            .filter(|&i| labels[i] == target)
            .map(|i| weights[i])
            .sum();
        sum += sampled_w / p;
    }
    let mean = sum / n_seeds as f64;
    // Standard error of the mean estimate from the HT variance
    // (1−p)/p·Σw² over the group's actual weights; 4 standard errors is
    // a generous deterministic tolerance.
    let sum_sq: f64 = labels
        .iter()
        .enumerate()
        .filter(|(_, &l)| l == target)
        .map(|(i, _)| weights[i] * weights[i])
        .sum();
    let se = ((1.0 - p) / p * sum_sq).sqrt() / (n_seeds as f64).sqrt();
    assert!(
        (mean - w_true).abs() <= 4.0 * se.max(1.0),
        "HT estimator biased: mean {mean:.2} vs true {w_true:.2} (se {se:.3})"
    );
}

#[test]
fn nominal_95_intervals_cover_at_least_90_percent() {
    let (toks, labels, weights) = corpus();
    let field = FieldId(0);
    let m = sample_size(0.1);
    let p = m as f64 / toks.len() as f64;
    let max_weight = weights.iter().cloned().fold(0.0, f64::max);
    let mut true_w = std::collections::HashMap::new();
    for (i, &l) in labels.iter().enumerate() {
        *true_w.entry(l).or_insert(0.0) += weights[i];
    }
    // Every true group the sampler can say anything about (≥ 2 records,
    // so both interval branches get exercised across trials).
    let targets: Vec<(u32, f64)> = true_w
        .iter()
        .filter(|(_, &w)| w >= 2.0)
        .map(|(&l, &w)| (l, w))
        .collect();
    assert!(
        targets.len() >= 50,
        "corpus too concentrated: {}",
        targets.len()
    );
    let mut covered = 0usize;
    let mut trials = 0usize;
    for seed in 0..40u64 {
        let sample = draw(&toks, field, seed, m);
        let mut sampled: std::collections::HashMap<u32, (f64, f64, usize)> =
            std::collections::HashMap::new();
        for &i in &sample {
            let e = sampled.entry(labels[i]).or_insert((0.0, 0.0, 0));
            e.0 += weights[i];
            e.1 += weights[i] * weights[i];
            e.2 += 1;
        }
        for &(label, w_true) in &targets {
            let (sw, ssq, k) = sampled.get(&label).copied().unwrap_or((0.0, 0.0, 0));
            let (_est, lo, hi) = confidence_interval(sw, ssq, k, p, max_weight);
            trials += 1;
            if lo <= w_true && w_true <= hi {
                covered += 1;
            }
        }
    }
    let coverage = covered as f64 / trials as f64;
    assert!(
        coverage >= 0.90,
        "nominal 95% intervals covered only {:.1}% of {trials} trials",
        coverage * 100.0
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn interval_always_brackets_estimate(
        sampled in 0usize..50,
        w in 0.5f64..10.0,
        p_mil in 1u32..=1_000_000,
        max_w in 1.0f64..10.0,
    ) {
        let p = p_mil as f64 / 1e6;
        let sampled_weight = w * sampled as f64;
        let sum_sq = w * w * sampled as f64;
        let (est, lo, hi) = confidence_interval(sampled_weight, sum_sq, sampled, p, max_w);
        prop_assert!(lo <= est && est <= hi, "lo {} est {} hi {}", lo, est, hi);
        prop_assert!(lo >= sampled_weight - 1e-9, "lo below certain weight");
        if p >= 1.0 {
            prop_assert_eq!((est, lo, hi), (sampled_weight, sampled_weight, sampled_weight));
        }
    }

    #[test]
    fn merged_sample_is_split_invariant(
        seed in 0u64..1000,
        n in 1u64..400,
        shards in 1usize..8,
        m in 1usize..64,
    ) {
        let r = TokenizedRecord::from_fields(&["a b".to_string()], 1.0);
        let mut global = Sketch::new(seed, m);
        let mut parts: Vec<Sketch> = (0..shards).map(|_| Sketch::new(seed, m)).collect();
        for rid in 0..n {
            let partition = rid.wrapping_mul(0x9e37_79b9) % 17;
            global.offer(rid, partition, &r);
            parts[(partition as usize) % shards].offer(rid, partition, &r);
        }
        let g: Vec<u64> = merge_sketches([&global], m).iter().map(|e| e.rid).collect();
        let s: Vec<u64> = merge_sketches(parts.iter(), m).iter().map(|e| e.rid).collect();
        prop_assert_eq!(g, s);
    }
}
