//! Differential suite for primary/replica replication (fault matrix:
//! docs/ROBUSTNESS.md).
//!
//! The replication contract under test: every answer a replica serves
//! is **byte-identical** to the primary's at any shard count, the acked
//! prefix survives the primary's death and a promotion, writes bounce
//! off replicas with `err:"not_primary"` until `promote`, torn frames
//! force a clean reconnect instead of corruption, and the lag is
//! visible through `stats`/`replstatus`/Prometheus.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use topk_bench::faults::{
    chaos_failover, chaos_replication, tight_config, wait_replica_records, TestServer,
};
use topk_core::Parallelism;
use topk_service::{Engine, EngineConfig, Json, Metrics};

/// Abort the whole test process if a scenario wedges (a hung replication
/// test would otherwise stall CI until its global timeout).
fn watchdog(secs: u64) {
    std::thread::spawn(move || {
        let t0 = Instant::now();
        std::thread::sleep(Duration::from_secs(secs));
        eprintln!("serve_replication watchdog fired after {:?}", t0.elapsed());
        std::process::exit(99);
    });
}

/// The generated citation corpus as raw ingest rows, in dataset order.
fn sample_rows(seed: u64, n: usize) -> Vec<(Vec<String>, f64)> {
    let d = topk_datagen::generate_citations(&topk_datagen::CitationConfig {
        n_authors: 40,
        n_citations: n,
        seed,
        ..Default::default()
    });
    d.records()
        .iter()
        .map(|r| (r.fields().to_vec(), r.weight()))
        .collect()
}

/// Every query shape we compare, concatenated into one comparable blob.
fn answers(e: &Engine, ks: &[usize]) -> String {
    let mut out = String::new();
    for &k in ks {
        out.push_str(&e.query_topk(k).expect("topk").to_string());
        out.push('\n');
        out.push_str(&e.query_topr(k).expect("topr").to_string());
        out.push('\n');
    }
    out
}

fn engine_config(shards: usize) -> EngineConfig {
    EngineConfig {
        parallelism: Parallelism::sequential(),
        shards,
        ..Default::default()
    }
}

#[test]
fn replica_answers_are_byte_identical_at_every_shard_count() {
    watchdog(120);
    let rows = sample_rows(11, 240);
    // Citation rows are long; keep the batch sizes under a roomier cap
    // than the fault-suite default.
    let roomy = || topk_service::ServerConfig {
        max_request_bytes: 1 << 20,
        ..tight_config()
    };
    let primary = TestServer::spawn_with(roomy(), engine_config(4), None).unwrap();
    let mut pc = primary.client().unwrap();
    // Half the stream lands before any replica exists, so the snapshot
    // bootstrap carries real state...
    for chunk in rows[..120].chunks(37) {
        pc.ingest_batch(chunk).unwrap();
    }
    let replicas: Vec<TestServer> = [1usize, 2, 3, 5, 8]
        .iter()
        .map(|&shards| {
            TestServer::spawn_replica_with(roomy(), engine_config(shards), &primary.addr).unwrap()
        })
        .collect();
    // ...and the other half arrives while they tail live.
    for chunk in rows[120..].chunks(37) {
        pc.ingest_batch(chunk).unwrap();
    }
    drop(pc);
    let ks = [1, 3, 10, 1000]; // 1000 > total groups: the k-overshoot edge
    let want = answers(&primary.engine, &ks);
    for (replica, shards) in replicas.iter().zip([1usize, 2, 3, 5, 8]) {
        wait_replica_records(replica, rows.len(), Duration::from_secs(30)).unwrap();
        assert_eq!(
            answers(&replica.engine, &ks),
            want,
            "{shards}-shard replica diverged from the 4-shard primary"
        );
    }
    for replica in replicas {
        replica.shutdown().unwrap();
    }
    primary.shutdown().unwrap();
}

#[test]
fn replica_refuses_writes_until_promoted() {
    watchdog(90);
    let primary = TestServer::spawn(tight_config(), None).unwrap();
    let mut pc = primary.client().unwrap();
    pc.ingest_batch(&[
        (vec!["maria santos".into()], 1.0),
        (vec!["maria  santos".into()], 2.0),
    ])
    .unwrap();
    drop(pc);
    let replica = TestServer::spawn_replica(tight_config(), &primary.addr).unwrap();
    wait_replica_records(&replica, 2, Duration::from_secs(15)).unwrap();

    let mut rc = replica.client().unwrap();
    // Reads are served; writes are refused with the structured code.
    rc.topk(1).unwrap();
    let err = rc
        .ingest_batch(&[(vec!["john doe".into()], 1.0)])
        .unwrap_err();
    assert!(err.contains("not_primary"), "{err}");
    let err = rc.restore("/nonexistent/snapshot.bin").unwrap_err();
    assert!(err.contains("not_primary"), "{err}");
    let stats = rc.stats().unwrap();
    assert_eq!(stats.get("role").and_then(Json::as_str), Some("replica"));
    assert_eq!(stats.get("epoch").and_then(Json::as_usize), Some(1));

    // Promotion flips the role, bumps the epoch, and is idempotent.
    let promoted = rc.promote().unwrap();
    assert_eq!(promoted.get("role").and_then(Json::as_str), Some("primary"));
    assert_eq!(promoted.get("epoch").and_then(Json::as_usize), Some(2));
    assert_eq!(promoted.get("promoted").and_then(Json::as_bool), Some(true));
    let again = rc.promote().unwrap();
    assert_eq!(again.get("epoch").and_then(Json::as_usize), Some(2));
    assert_eq!(again.get("promoted").and_then(Json::as_bool), Some(false));
    rc.ingest_batch(&[(vec!["john doe".into()], 1.0)]).unwrap();
    let stats = rc.stats().unwrap();
    assert_eq!(stats.get("role").and_then(Json::as_str), Some("primary"));
    assert_eq!(stats.get("records").and_then(Json::as_usize), Some(3));
    drop(rc);
    primary.shutdown().unwrap();
    replica.shutdown().unwrap();
}

#[test]
fn primary_death_mid_ingest_preserves_the_acked_prefix_through_promotion() {
    watchdog(120);
    let primary = TestServer::spawn(tight_config(), None).unwrap();
    let replica = TestServer::spawn_replica(tight_config(), &primary.addr).unwrap();

    // A deterministic row per batch, so the replica's applied entry
    // count alone reconstructs its exact state.
    let row = |i: usize| {
        (
            vec![format!("author {:02} name", i % 9)],
            (i % 3) as f64 + 1.0,
        )
    };
    // Hammer single-row ingests from a side thread until the primary
    // dies underneath it mid-stream.
    let acked = Arc::new(std::sync::atomic::AtomicUsize::new(0));
    let writer = {
        let acked = Arc::clone(&acked);
        let mut c = primary.client().unwrap();
        std::thread::spawn(move || {
            for i in 0.. {
                if c.ingest_batch(&[row(i)]).is_err() {
                    break;
                }
                acked.fetch_add(1, Ordering::SeqCst);
            }
        })
    };
    while acked.load(Ordering::SeqCst) < 20 {
        std::thread::sleep(Duration::from_millis(5));
    }
    primary.shutdown().unwrap();
    writer.join().unwrap();
    let acked = acked.load(Ordering::SeqCst);

    // Every acked batch must reach the replica (publish-before-ack plus
    // the sealed-drain on shutdown guarantee the prefix); an extra
    // entry whose ack was lost in the close may legitimately follow.
    wait_replica_records(&replica, acked, Duration::from_secs(15)).unwrap();
    let settled = |e: &Engine| {
        let mut last = e.stats_json().get("records").and_then(Json::as_usize);
        loop {
            std::thread::sleep(Duration::from_millis(100));
            let now = e.stats_json().get("records").and_then(Json::as_usize);
            if now == last {
                return now.unwrap_or(0);
            }
            last = now;
        }
    };
    let applied = settled(&replica.engine);
    assert!(
        applied >= acked,
        "replica lost acked batches: {applied} < {acked}"
    );

    let (promoted_now, epoch) = replica.engine.promote();
    assert!(promoted_now);
    assert_eq!(epoch, 2);
    let mut rc = replica.client().unwrap();
    rc.ingest_batch(&[(vec!["fresh write".into()], 1.0)])
        .unwrap();

    // Reference: the same prefix ingested directly, no replication.
    let reference = Engine::new(engine_config(1)).unwrap();
    for i in 0..applied {
        reference.ingest(vec![row(i)]).unwrap();
    }
    reference
        .ingest(vec![(vec!["fresh write".into()], 1.0)])
        .unwrap();
    let ks = [1, 5, 1000];
    assert_eq!(
        answers(&replica.engine, &ks),
        answers(&reference, &ks),
        "promoted replica diverged from the acked prefix"
    );
    drop(rc);
    replica.shutdown().unwrap();
}

/// FNV-1a over `bytes` — the same checksum the replication frames use,
/// re-implemented here so the fake primary below can forge valid (and
/// deliberately invalid) frames without reaching into crate internals.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        hash = (hash ^ b as u64).wrapping_mul(0x100000001b3);
    }
    hash
}

/// Serialize one replication frame, optionally corrupting the checksum.
fn frame(kind: u8, seq: u64, payload: &[u8], corrupt: bool) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.push(kind);
    buf.extend_from_slice(&seq.to_le_bytes());
    buf.extend_from_slice(&0u64.to_le_bytes()); // ts_ms
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(payload);
    let crc = fnv1a(&buf) ^ if corrupt { 0xdead } else { 0 };
    buf.extend_from_slice(&crc.to_le_bytes());
    buf
}

#[test]
fn torn_replication_frame_forces_reconnect_not_corruption() {
    watchdog(90);
    // A fake primary: session 1 serves a valid snapshot bootstrap and
    // then a corrupt frame; session 2 (the reconnect) serves a clean
    // tail. The replica must end byte-identical to the source engine
    // with exactly one recorded reconnect — never a corrupt apply.
    let source = Engine::new(engine_config(1)).unwrap();
    source
        .ingest(vec![
            (vec!["grace hopper".into()], 1.0),
            (vec!["grace  hopper".into()], 2.0),
        ])
        .unwrap();
    let (snapshot, cursor) = source.snapshot_bytes().unwrap();

    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let done = Arc::new(AtomicBool::new(false));
    let fake_primary = {
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            // Session 1: handshake -> snapshot header -> bytes -> torn frame.
            let (mut s, _) = listener.accept().unwrap();
            let mut line = String::new();
            BufReader::new(s.try_clone().unwrap())
                .read_line(&mut line)
                .unwrap();
            assert!(line.contains(r#""cmd":"replicate""#), "{line}");
            assert!(
                !line.contains(r#""from""#),
                "fresh replica must not send a cursor: {line}"
            );
            let header = format!(
                "{{\"ok\":true,\"mode\":\"snapshot\",\"epoch\":1,\"seq\":{cursor},\"head\":{cursor},\"snapshot_bytes\":{}}}\n",
                snapshot.len()
            );
            s.write_all(header.as_bytes()).unwrap();
            s.write_all(&snapshot).unwrap();
            s.write_all(&frame(0, cursor, b"not a real entry", true))
                .unwrap();
            let _ = s.flush();
            // Leave the socket open: the replica must abandon it on the
            // checksum mismatch, not hang waiting for a close.

            // Session 2: the reconnect carries the intact cursor; serve
            // a clean tail with a heartbeat until the test is done.
            let (mut s2, _) = listener.accept().unwrap();
            let mut line = String::new();
            BufReader::new(s2.try_clone().unwrap())
                .read_line(&mut line)
                .unwrap();
            assert!(
                line.contains(&format!(r#""from":{cursor}"#)),
                "reconnect must keep its cursor: {line}"
            );
            let header =
                format!("{{\"ok\":true,\"mode\":\"tail\",\"epoch\":1,\"seq\":{cursor},\"head\":{cursor}}}\n");
            s2.write_all(header.as_bytes()).unwrap();
            while !done.load(Ordering::SeqCst) {
                s2.write_all(&frame(1, cursor, &[], false)).unwrap();
                let _ = s2.flush();
                std::thread::sleep(Duration::from_millis(50));
            }
        })
    };

    let replica = TestServer::spawn_replica(tight_config(), &addr).unwrap();
    wait_replica_records(&replica, 2, Duration::from_secs(20)).unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    while Metrics::get(&replica.engine.metrics.replica_reconnects) < 1 {
        assert!(Instant::now() < deadline, "reconnect was never recorded");
        std::thread::sleep(Duration::from_millis(20));
    }
    let ks = [1, 5];
    assert_eq!(
        answers(&replica.engine, &ks),
        answers(&source, &ks),
        "replica state corrupted by the torn frame"
    );
    assert!(Metrics::get(&replica.engine.metrics.replica_bootstraps) >= 1);
    done.store(true, Ordering::SeqCst);
    fake_primary.join().unwrap();
    replica.shutdown().unwrap();
}

#[test]
fn replica_lag_is_visible_in_stats_replstatus_and_prometheus() {
    watchdog(90);
    let primary = TestServer::spawn(tight_config(), None).unwrap();
    let mut pc = primary.client().unwrap();
    pc.ingest_batch(&[
        (vec!["ada lovelace".into()], 1.0),
        (vec!["ada  lovelace".into()], 1.0),
    ])
    .unwrap();
    let replica = TestServer::spawn_replica(tight_config(), &primary.addr).unwrap();
    wait_replica_records(&replica, 2, Duration::from_secs(15)).unwrap();

    let mut rc = replica.client().unwrap();
    let stats = rc.stats().unwrap();
    let rep = stats
        .get("replica")
        .expect("replica member in replica stats");
    assert_eq!(rep.get("connected").and_then(Json::as_bool), Some(true));
    assert_eq!(
        rep.get("source").and_then(Json::as_str),
        Some(primary.addr.as_str())
    );
    assert_eq!(rep.get("lag_entries").and_then(Json::as_usize), Some(0));
    assert!(rep.get("lag_ms").and_then(Json::as_usize).is_some());

    let rs = rc.replstatus().unwrap();
    assert_eq!(rs.get("role").and_then(Json::as_str), Some("replica"));
    assert_eq!(rs.get("epoch").and_then(Json::as_usize), Some(1));
    assert!(rs.get("replica").is_some());

    let health = rc.health().unwrap();
    assert_eq!(health.get("role").and_then(Json::as_str), Some("replica"));

    let prom = rc.metrics_text().unwrap();
    assert!(prom.contains("topk_epoch 1"), "{prom}");
    assert!(prom.contains("topk_replica_connected 1"), "{prom}");
    assert!(prom.contains("topk_replica_lag_entries 0"), "{prom}");
    assert!(prom.contains("topk_replica_bootstraps_total 1"), "{prom}");

    // The primary counts its side of the stream.
    let mut pm = String::new();
    pm.push_str(&pc.metrics_text().unwrap());
    assert!(pm.contains("topk_repl_streams_total 1"), "{pm}");
    drop(pc);
    drop(rc);
    primary.shutdown().unwrap();
    replica.shutdown().unwrap();
}

#[test]
fn replication_chaos_scenario_holds_its_invariants() {
    watchdog(120);
    let outcome = chaos_replication().unwrap();
    assert_eq!(outcome.name, "replication");
    assert!(outcome.detail.contains("byte-identical"), "{outcome:?}");
}

#[test]
fn client_failover_completes_the_query_stream() {
    watchdog(120);
    let outcome = chaos_failover().unwrap();
    assert_eq!(outcome.name, "failover");
    assert!(outcome.detail.contains("byte-identical"), "{outcome:?}");
}
