//! Differential test for the approximate query path (`docs/APPROX.md`).
//!
//! Asserts the two contracts the approximation makes:
//!
//! 1. **Shard invariance** — approximate `topk`/`topr` responses are
//!    byte-identical at shard counts 1, 2, 3, 4 and 8 (the per-shard
//!    bottom-m sketches merge to exactly the global sample).
//! 2. **Conditional exactness** — whenever no confidence interval
//!    overlaps the K-boundary the contested partitions all escalate, so
//!    every returned row is exact (`escalated: true`) and the
//!    approximate top-k must equal the exact top-k — same
//!    representatives, sizes, and weights, rank for rank. The test
//!    sweeps corpora, shard counts, and epsilons, and requires a
//!    nonzero number of cases to actually satisfy the precondition so
//!    the conditional claim is never vacuously true.
//!
//! Plus the degenerate end (a tight epsilon on a small corpus samples
//! everything and reports `certified`) and a live-socket check that
//! served approx responses are the engine's, byte for byte.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use topk_core::Parallelism;
use topk_service::json::Json;
use topk_service::{Client, Engine, EngineConfig, Server};

const WATCHDOG_SECS: u64 = 90;

fn start_watchdog() -> Arc<AtomicBool> {
    let done = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&done);
    std::thread::spawn(move || {
        std::thread::sleep(std::time::Duration::from_secs(WATCHDOG_SECS));
        if !flag.load(Ordering::SeqCst) {
            eprintln!("serve_approx: watchdog fired after {WATCHDOG_SECS}s, aborting");
            std::process::exit(124);
        }
    });
    done
}

fn rows(n_students: usize, n_records: usize, zipf: f64, seed: u64) -> Vec<(Vec<String>, f64)> {
    let d = topk_datagen::generate_students(&topk_datagen::StudentConfig {
        n_students,
        n_records,
        zipf_exponent: zipf,
        seed,
        ..Default::default()
    });
    d.records()
        .iter()
        .map(|r| (r.fields().to_vec(), r.weight()))
        .collect()
}

fn engine(shards: usize, rows: &[(Vec<String>, f64)]) -> Engine {
    let e = Engine::new(EngineConfig {
        parallelism: Parallelism::sequential(),
        shards,
        ..Default::default()
    })
    .expect("engine");
    for chunk in rows.chunks(64) {
        e.ingest(chunk.to_vec()).expect("ingest");
    }
    e
}

#[test]
fn approx_responses_identical_at_shard_counts_1_through_8() {
    let rows = rows(60, 300, 0.9, 0x5EED);
    let single = engine(1, &rows);
    for shards in [2usize, 3, 4, 8] {
        let sharded = engine(shards, &rows);
        for k in [1usize, 5, 100] {
            for eps in [0.05, 0.3, 0.9] {
                assert_eq!(
                    single.query_topk_approx(k, eps).unwrap().to_string(),
                    sharded.query_topk_approx(k, eps).unwrap().to_string(),
                    "topk shards={shards} k={k} eps={eps}"
                );
                assert_eq!(
                    single.query_topr_approx(k, eps).unwrap().to_string(),
                    sharded.query_topr_approx(k, eps).unwrap().to_string(),
                    "topr shards={shards} k={k} eps={eps}"
                );
            }
        }
    }
}

/// Did every returned row escalate? Escalated rows carry the exact
/// collapse's weight/size/representative, so an all-escalated answer is
/// the observable form of "no surviving interval overlaps the
/// K-boundary" — the case where the paper's guarantee says the
/// approximate top-k *is* the top-k.
fn fully_escalated(groups: &[Json]) -> bool {
    groups
        .iter()
        .all(|g| g.get("escalated").unwrap().as_bool() == Some(true))
}

#[test]
fn escalated_approx_topk_equals_exact_topk() {
    // Epsilons kept fine enough that the bottom-m sample densely covers
    // the head groups (the regime the estimator is built for — a
    // coarse ε can miss a small head group entirely, in which case it
    // has no interval at all and the guarantee does not apply; that
    // limitation is exercised and documented in exp_approx instead).
    let k = 5;
    let mut resolved_cases = 0usize;
    for (seed, zipf, n) in [
        (1u64, 1.1, 400usize),
        (2, 1.1, 600),
        (3, 0.9, 400),
        (7, 1.2, 800),
        (5, 1.1, 1600),
    ] {
        let rows = rows(n / 5, n, zipf, seed);
        for shards in [1usize, 4] {
            let e = engine(shards, &rows);
            let exact = e.query_topk(k).unwrap();
            for eps in [0.05, 0.1, 0.15] {
                let approx = e.query_topk_approx(k, eps).unwrap();
                let ag = approx.get("groups").unwrap().as_arr().unwrap();
                if !fully_escalated(ag) {
                    continue;
                }
                resolved_cases += 1;
                let eg = exact.get("groups").unwrap().as_arr().unwrap();
                assert_eq!(eg.len(), ag.len(), "seed={seed} eps={eps} shards={shards}");
                for (x, a) in eg.iter().zip(ag) {
                    assert_eq!(
                        x.get("rep").unwrap().as_str(),
                        a.get("rep").unwrap().as_str(),
                        "seed={seed} eps={eps} shards={shards}"
                    );
                    assert_eq!(
                        x.get("size").unwrap().as_usize(),
                        a.get("size").unwrap().as_usize(),
                        "seed={seed} eps={eps} shards={shards}"
                    );
                    assert_eq!(
                        x.get("weight").unwrap().as_f64(),
                        a.get("estimate").unwrap().as_f64(),
                        "seed={seed} eps={eps} shards={shards}"
                    );
                }
            }
        }
    }
    assert!(
        resolved_cases >= 4,
        "precondition held in only {resolved_cases} cases — the differential \
         claim would be near-vacuous"
    );
}

#[test]
fn tight_epsilon_samples_everything_and_certifies() {
    // m(0.05) = 3200 >> 150 records: the merged sample is the whole
    // population, every contested partition escalates, and the topr
    // shape must report certified with exact weights.
    let rows = rows(30, 150, 0.8, 9);
    let e = engine(2, &rows);
    let body = e.query_topr_approx(3, 0.05).unwrap();
    assert_eq!(
        body.get("certified").unwrap().as_bool(),
        Some(true),
        "{body}"
    );
    assert_eq!(
        body.get("sample_size").unwrap().as_usize(),
        Some(150),
        "sample is the whole corpus: {body}"
    );
    // Weights of the approx entries are the exact collapsed weights.
    let exact = e.query_topk(3).unwrap();
    let eg = exact.get("groups").unwrap().as_arr().unwrap();
    let ae = body.get("entries").unwrap().as_arr().unwrap();
    assert_eq!(eg.len(), ae.len());
    for (x, a) in eg.iter().zip(ae) {
        assert_eq!(a.get("escalated").unwrap().as_bool(), Some(true), "{a}");
        assert_eq!(
            x.get("weight").unwrap().as_f64(),
            a.get("estimate").unwrap().as_f64()
        );
        assert_eq!(
            x.get("rep").unwrap().as_str(),
            a.get("rep").unwrap().as_str()
        );
    }
}

#[test]
fn served_approx_matches_engine_and_counts_metrics() {
    let done = start_watchdog();
    let rows = rows(40, 200, 1.0, 11);
    let e = engine(4, &rows);
    let want_topk = e.query_topk_approx(4, 0.1).unwrap().to_string();
    let want_topr = e.query_topr_approx(4, 0.1).unwrap().to_string();
    let engine = Arc::new(e);
    let server = Server::bind("127.0.0.1:0", Arc::clone(&engine)).expect("bind");
    let (addr, handle) = server.spawn();
    let mut c = Client::connect(&addr.to_string()).expect("connect");
    // The served body is the engine body behind the ok flag.
    let got = c.topk_approx(4, 0.1).expect("served approx topk");
    assert_eq!(
        got.to_string(),
        want_topk.replacen('{', "{\"ok\":true,", 1),
        "served approx topk"
    );
    let got = c.topr_approx(4, 0.1).expect("served approx topr");
    assert_eq!(got.to_string(), want_topr.replacen('{', "{\"ok\":true,", 1));
    let text = c.metrics_text().expect("metrics");
    assert!(
        text.contains("topk_approx_queries_total 4\n"),
        "2 engine + 2 served approx queries: {text}"
    );
    assert!(text.contains("topk_shard_0_sample "), "{text}");
    c.shutdown().expect("shutdown");
    handle
        .join()
        .expect("server thread")
        .expect("server ran clean");
    done.store(true, Ordering::SeqCst);
}
