//! Differential tests for the sharded engine: every observable answer a
//! sharded [`Engine`] produces must be **byte-identical** to a
//! single-shard engine over the same stream — after plain ingest, after
//! interleaved ingest/query flushes, after journal replay, and after
//! snapshot/restore (including restoring across *different* shard
//! counts, since snapshot files are shard-count-agnostic).
//!
//! These are the proofs `docs/ARCHITECTURE.md` leans on when it claims
//! `--shards N` is a pure performance knob.

use topk_core::Parallelism;
use topk_service::{Engine, EngineConfig, JournalSet, Metrics};

fn engine_with(shards: usize, parallelism: Parallelism) -> Engine {
    Engine::new(EngineConfig {
        parallelism,
        shards,
        ..Default::default()
    })
    .expect("engine")
}

/// The generated citation corpus as raw ingest rows, in dataset order.
fn sample_rows(seed: u64, n: usize) -> Vec<(Vec<String>, f64)> {
    let d = topk_datagen::generate_citations(&topk_datagen::CitationConfig {
        n_authors: 60,
        n_citations: n,
        seed,
        ..Default::default()
    });
    d.records()
        .iter()
        .map(|r| (r.fields().to_vec(), r.weight()))
        .collect()
}

/// Every query shape we compare, concatenated into one comparable blob.
fn answers(e: &Engine, ks: &[usize]) -> String {
    let mut out = String::new();
    for &k in ks {
        out.push_str(&e.query_topk(k).expect("topk").to_string());
        out.push('\n');
        out.push_str(&e.query_topr(k).expect("topr").to_string());
        out.push('\n');
    }
    out
}

#[test]
fn sharded_answers_are_byte_identical_to_single_engine() {
    let rows = sample_rows(7, 400);
    let ks = [1, 3, 10, 1000]; // 1000 > total groups: the k-overshoot edge
    let single = engine_with(1, Parallelism::sequential());
    for chunk in rows.chunks(61) {
        single.ingest(chunk.to_vec()).unwrap();
        single.query_topk(5).unwrap(); // interleaved flushes
    }
    let want = answers(&single, &ks);
    for shards in [2, 3, 4, 8] {
        // Parallel flush/merge on the sharded side must not change a byte.
        let sharded = engine_with(shards, Parallelism::auto());
        for chunk in rows.chunks(61) {
            sharded.ingest(chunk.to_vec()).unwrap();
            sharded.query_topk(5).unwrap();
        }
        assert_eq!(
            answers(&sharded, &ks),
            want,
            "{shards}-shard answers differ from single-engine"
        );
        assert_eq!(sharded.generation(), single.generation());
    }
}

#[test]
fn empty_and_single_shard_corner_cases() {
    // Empty engine: empty answers at every shard count, no panic.
    for shards in [1, 4, 8] {
        let e = engine_with(shards, Parallelism::sequential());
        assert_eq!(e.query_topk(3).unwrap().to_string(), r#"{"groups":[]}"#);
        assert_eq!(
            e.query_topr(3).unwrap().to_string(),
            r#"{"entries":[],"certified":false}"#
        );
    }
    // Variants of one author all share the blocking partition, so they
    // all land on one shard — the others stay empty and the merge must
    // cope with k exceeding every per-shard group list.
    let single = engine_with(1, Parallelism::sequential());
    let sharded = engine_with(8, Parallelism::sequential());
    let rows: Vec<(Vec<String>, f64)> = [
        "grace hopper",
        "g hopper",
        "grace  hopper",
        "grace b hopper",
    ]
    .iter()
    .map(|s| (vec![s.to_string()], 1.0))
    .collect();
    single.ingest(rows.clone()).unwrap();
    sharded.ingest(rows).unwrap();
    assert_eq!(
        answers(&sharded, &[1, 2, 50]),
        answers(&single, &[1, 2, 50])
    );
}

#[test]
fn skewed_corpus_skips_whole_shards() {
    // Many distinct groups spread over many shards, one clearly heavy:
    // with k=1 the merge visits the heavy shard first and must skip
    // every other non-empty shard outright.
    let e = engine_with(8, Parallelism::sequential());
    let mut rows = Vec::new();
    for i in 0..40 {
        rows.push((vec![format!("author{i:02} lastword{i:02}")], 1.0));
    }
    for _ in 0..10 {
        rows.push((vec!["famous person".to_string()], 1.0));
    }
    e.ingest(rows).unwrap();
    let body = e.query_topk(1).unwrap().to_string();
    assert!(body.contains("\"rep\":\"famous person\""), "{body}");
    assert!(
        Metrics::get(&e.metrics.shard_skips) > 0,
        "k=1 over a skewed corpus should skip shards"
    );
}

#[test]
fn journal_replay_reproduces_sharded_and_single_identically() {
    let dir = std::env::temp_dir().join("topk_serve_shards_journal");
    std::fs::create_dir_all(&dir).unwrap();
    let rows = sample_rows(11, 200);
    let mut lines = Vec::new();
    for shards in [1, 4] {
        let jpath = dir.join(format!("wal_{shards}"));
        // Scrub any prior run's segments.
        let (j0, _) = JournalSet::open(&jpath, shards).unwrap();
        j0.truncate_all().unwrap();
        drop(j0);
        let (journal, recovery) = JournalSet::open(&jpath, shards).unwrap();
        assert!(recovery.rows.is_empty());
        let mut e = engine_with(shards, Parallelism::sequential());
        e.attach_journal(journal);
        for chunk in rows.chunks(33) {
            e.ingest(chunk.to_vec()).unwrap();
        }
        // "kill -9": drop the engine without snapshotting, then recover
        // from the segment files alone.
        drop(e);
        let (journal, recovery) = JournalSet::open(&jpath, shards).unwrap();
        assert_eq!(recovery.rows.len(), rows.len());
        let mut revived = engine_with(shards, Parallelism::sequential());
        revived.attach_journal(journal);
        revived.replay_rows(recovery).unwrap();
        assert_eq!(revived.generation(), rows.len() as u64);
        // Post-replay ingests must keep working (rid counter resumed).
        revived
            .ingest(vec![(
                vec!["post crash person".into(); rows[0].0.len()],
                2.0,
            )])
            .unwrap();
        lines.push(answers(&revived, &[1, 5, 100]));
    }
    assert_eq!(
        lines[0], lines[1],
        "journal replay diverges between 1 and 4 shards"
    );
}

#[test]
fn snapshots_are_byte_identical_and_restore_across_shard_counts() {
    let dir = std::env::temp_dir().join("topk_serve_shards_snapshot");
    std::fs::create_dir_all(&dir).unwrap();
    let rows = sample_rows(13, 250);
    let ks = [1, 5, 100];

    // Build the same corpus at 1 and 4 shards; snapshot both.
    let single = engine_with(1, Parallelism::sequential());
    let sharded = engine_with(4, Parallelism::auto());
    for chunk in rows.chunks(47) {
        single.ingest(chunk.to_vec()).unwrap();
        single.query_topk(3).unwrap();
        sharded.ingest(chunk.to_vec()).unwrap();
        sharded.query_topk(3).unwrap();
    }
    let p1 = dir.join("one.snap");
    let p4 = dir.join("four.snap");
    single.snapshot(&p1).unwrap();
    sharded.snapshot(&p4).unwrap();
    assert_eq!(
        std::fs::read(&p1).unwrap(),
        std::fs::read(&p4).unwrap(),
        "snapshot files differ between shard counts"
    );

    // Cross-restore: the 4-shard snapshot into fresh 1-, 2- and
    // 8-shard engines; answers — and answers after further ingest —
    // stay byte-identical to the source engine's.
    let want = answers(&single, &ks);
    for shards in [1, 2, 8] {
        let e = engine_with(shards, Parallelism::sequential());
        let generation = e.restore(&p4).unwrap();
        assert_eq!(generation, rows.len() as u64);
        assert_eq!(
            answers(&e, &ks),
            want,
            "restore into {shards} shards diverges"
        );
        let late = (vec!["late arrival".to_string(); rows[0].0.len()], 1.5);
        e.ingest(vec![late.clone()]).unwrap();
        let single2 = engine_with(1, Parallelism::sequential());
        single2.restore(&p1).unwrap();
        single2.ingest(vec![late]).unwrap();
        assert_eq!(
            answers(&e, &ks),
            answers(&single2, &ks),
            "post-restore ingest diverges at {shards} shards"
        );
    }
}
