//! Property tests of the pruning guarantees (§4.2-§4.3): pruning must
//! never discard anything that could participate in a TopK answer.

use proptest::prelude::*;

use topk_core::{PipelineConfig, PrunedDedup, PruningMode};
use topk_datagen::{generate_addresses, AddressConfig};
use topk_predicates::address_predicates;
use topk_records::tokenize_dataset;

fn config(seed: u64, n_entities: usize, n_records: usize) -> AddressConfig {
    AddressConfig {
        n_entities,
        n_records,
        seed,
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Safety: every collapsed group whose weight reaches the certified
    /// lower bound M survives the prune, and everything the prune keeps
    /// is an unmodified collapsed group. (Single-level stack so collapse
    /// output is directly comparable.)
    #[test]
    fn heavy_groups_survive_pruning(
        seed in 0u64..500,
        k in 1usize..6,
        n_entities in 30usize..80,
    ) {
        let data = generate_addresses(&config(seed, n_entities, n_entities * 4));
        let toks = tokenize_dataset(&data);
        let stack = address_predicates(data.schema());

        let all = PrunedDedup::new(&toks, &stack, PipelineConfig {
            k, mode: PruningMode::CanopyCollapse, ..Default::default()
        }).run();
        let pruned = PrunedDedup::new(&toks, &stack, PipelineConfig {
            k, mode: PruningMode::Full, ..Default::default()
        }).run();
        let m_bound = pruned.last_lower_bound;

        let kept: std::collections::HashSet<Vec<u32>> = pruned
            .groups
            .iter()
            .map(|g| {
                let mut m = g.members.clone();
                m.sort_unstable();
                m
            })
            .collect();
        let all_sets: std::collections::HashSet<Vec<u32>> = all
            .groups
            .iter()
            .map(|g| {
                let mut m = g.members.clone();
                m.sort_unstable();
                m
            })
            .collect();

        // Everything kept is a genuine collapsed group.
        for g in &kept {
            prop_assert!(all_sets.contains(g), "prune invented a group");
        }
        // Every group at or above M survives.
        for g in &all.groups {
            if g.weight >= m_bound {
                let mut m = g.members.clone();
                m.sort_unstable();
                prop_assert!(
                    kept.contains(&m),
                    "group of weight {} >= M={} was pruned", g.weight, m_bound
                );
            }
        }
        // And the certified bound is consistent: at least K collapsed
        // groups weigh >= M (they exist, since M is a lower bound on the
        // K-th answer group).
        if m_bound > 0.0 {
            let heavy = all.groups.iter().filter(|g| g.weight >= m_bound).count();
            prop_assert!(heavy >= k.min(all.groups.len()),
                "only {heavy} groups reach M={m_bound} for K={k}");
        }
    }

    /// The certified lower bound never exceeds the K-th collapsed group's
    /// weight, and m ≥ K.
    #[test]
    fn lower_bound_sane(
        seed in 0u64..500,
        k in 1usize..6,
    ) {
        let data = generate_addresses(&config(seed, 50, 200));
        let toks = tokenize_dataset(&data);
        let stack = address_predicates(data.schema());
        let out = PrunedDedup::new(&toks, &stack, PipelineConfig {
            k, ..Default::default()
        }).run();
        let it = &out.stats.iterations[0];
        if it.lower_bound > 0.0 {
            prop_assert!(it.m >= k, "m={} < K={k}", it.m);
            // M = weight of the m-th collapsed group ≤ weight of the K-th
            // (weights sorted non-increasing, m ≥ K).
            let all = PrunedDedup::new(&toks, &stack, PipelineConfig {
                k, mode: PruningMode::CanopyCollapse, ..Default::default()
            }).run();
            if all.groups.len() >= k {
                prop_assert!(it.lower_bound <= all.groups[k - 1].weight + 1e-9);
            }
        }
    }
}
