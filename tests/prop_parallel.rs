//! Differential property tests: the parallel pipeline must be
//! *bit-identical* to the sequential one at every thread count.
//!
//! This is the contract documented in `docs/PARALLELISM.md` — every
//! parallel stage shards work into contiguous chunks and reduces in
//! input order, so floating-point accumulation order never changes.
//! These tests exercise the whole PrunedDedup pipeline plus the final
//! TopK answers over generated datasets and compare against the
//! `threads = 1` run with exact (`to_bits`) weight equality.

use proptest::prelude::*;

use topk_core::{Parallelism, PipelineConfig, PipelineOutcome, PrunedDedup, TopKQuery};
use topk_datagen::{generate_addresses, generate_citations, AddressConfig, CitationConfig};
use topk_records::{tokenize_dataset, FieldId, TokenizedRecord};

const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

fn scorer(a: &TokenizedRecord, b: &TokenizedRecord) -> f64 {
    topk_text::sim::overlap_coefficient(&a.field(FieldId(0)).qgrams3, &b.field(FieldId(0)).qgrams3)
        - 0.5
}

/// Assert two pipeline outcomes are identical: same groups (members,
/// reps), bit-identical weights, and the same `M` bound.
fn assert_outcomes_identical(
    seq: &PipelineOutcome,
    par: &PipelineOutcome,
    threads: usize,
) -> Result<(), String> {
    prop_assert_eq!(
        seq.groups.len(),
        par.groups.len(),
        "group count diverged at {} threads",
        threads
    );
    for (gs, gp) in seq.groups.iter().zip(&par.groups) {
        prop_assert_eq!(gs.rep, gp.rep, "group rep diverged at {} threads", threads);
        prop_assert_eq!(
            &gs.members,
            &gp.members,
            "group members diverged at {} threads",
            threads
        );
        prop_assert_eq!(
            gs.weight.to_bits(),
            gp.weight.to_bits(),
            "group weight not bit-identical at {} threads",
            threads
        );
    }
    prop_assert_eq!(
        seq.last_lower_bound.to_bits(),
        par.last_lower_bound.to_bits(),
        "M bound not bit-identical at {} threads",
        threads
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// PrunedDedup over citation data: groups, weights, and M must match
    /// the sequential run exactly for threads ∈ {1, 2, 4}.
    #[test]
    fn pipeline_outcome_matches_sequential(seed in 0u64..300, k in 1usize..8) {
        let data = generate_citations(&CitationConfig {
            n_authors: 40,
            n_citations: 180,
            seed,
            ..Default::default()
        });
        let toks = tokenize_dataset(&data);
        let stack = topk_predicates::citation_predicates(data.schema(), &toks);

        let run = |threads: usize| {
            PrunedDedup::new(&toks, &stack, PipelineConfig {
                k,
                parallelism: Parallelism::threads(threads),
                ..Default::default()
            })
            .run()
        };
        let seq = run(1);
        for threads in THREAD_COUNTS {
            assert_outcomes_identical(&seq, &run(threads), threads)?;
        }
    }

    /// The full TopK count query (pipeline + scoring + segmentation DP)
    /// over address data must return identical answers at every thread
    /// count: same scores, same groups, bit-identical weights.
    #[test]
    fn topk_answers_match_sequential(seed in 0u64..300) {
        let data = generate_addresses(&AddressConfig {
            n_entities: 30,
            n_records: 120,
            seed,
            ..Default::default()
        });
        let toks = tokenize_dataset(&data);
        let stack = topk_predicates::address_predicates(data.schema());

        let run = |threads: usize| {
            let mut q = TopKQuery::new(3, 2);
            q.parallelism = Parallelism::threads(threads);
            q.run(&toks, &stack, &scorer)
        };
        let seq = run(1);
        for threads in THREAD_COUNTS {
            let par = run(threads);
            prop_assert_eq!(seq.answers.len(), par.answers.len());
            for (sa, pa) in seq.answers.iter().zip(&par.answers) {
                prop_assert_eq!(
                    sa.score.to_bits(),
                    pa.score.to_bits(),
                    "answer score diverged at {} threads",
                    threads
                );
                prop_assert_eq!(sa.groups.len(), pa.groups.len());
                for (gs, gp) in sa.groups.iter().zip(&pa.groups) {
                    prop_assert_eq!(gs.rep, gp.rep);
                    prop_assert_eq!(&gs.records, &gp.records);
                    prop_assert_eq!(gs.weight.to_bits(), gp.weight.to_bits());
                }
            }
            prop_assert_eq!(
                seq.stats.final_group_count(),
                par.stats.final_group_count()
            );
        }
    }
}
