//! Property test: for random corpora, random batch splits, and every
//! shard count 1–8, the sharded engine's TopK and TopR responses are
//! byte-identical to a single-shard engine over the same stream.
//!
//! This is the shard-count half of the equivalence argument (the
//! single-shard engine is itself tied to the batch pipeline by
//! `serve_roundtrip.rs`), so together the two suites pin the sharded
//! server to Algorithm 2's answers.

use proptest::prelude::*;

use topk_core::Parallelism;
use topk_service::{Engine, EngineConfig};

fn build(shards: usize, rows: &[(Vec<String>, f64)], batch: usize, query_between: bool) -> Engine {
    let e = Engine::new(EngineConfig {
        parallelism: Parallelism::sequential(),
        shards,
        ..Default::default()
    })
    .expect("engine");
    for chunk in rows.chunks(batch) {
        e.ingest(chunk.to_vec()).expect("ingest");
        if query_between {
            // Force a flush mid-stream: collapse decisions then depend
            // on partial corpus statistics, which both engines must
            // arrive at identically.
            e.query_topk(2).expect("interleaved query");
        }
    }
    e
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn sharded_topk_topr_equal_single_engine(
        seed in 0u64..300,
        shards in 2usize..=8,
        batch in 10usize..80,
        query_between in any::<bool>(),
    ) {
        let data = topk_datagen::generate_citations(&topk_datagen::CitationConfig {
            n_authors: 30,
            n_citations: 120,
            seed,
            ..Default::default()
        });
        let rows: Vec<(Vec<String>, f64)> = data
            .records()
            .iter()
            .map(|r| (r.fields().to_vec(), r.weight()))
            .collect();
        let single = build(1, &rows, batch, query_between);
        let sharded = build(shards, &rows, batch, query_between);
        for k in [1usize, 4, 1000] {
            prop_assert_eq!(
                single.query_topk(k).unwrap().to_string(),
                sharded.query_topk(k).unwrap().to_string(),
                "topk k={} shards={} seed={}", k, shards, seed
            );
            prop_assert_eq!(
                single.query_topr(k).unwrap().to_string(),
                sharded.query_topr(k).unwrap().to_string(),
                "topr k={} shards={} seed={}", k, shards, seed
            );
        }
        prop_assert_eq!(single.generation(), sharded.generation());
        prop_assert_eq!(
            single.stats_json().get("groups").unwrap().to_string(),
            sharded.stats_json().get("groups").unwrap().to_string()
        );
    }
}
