//! Byte-stability tests for EXPLAIN profiles (`docs/OBSERVABILITY.md`,
//! *EXPLAIN & profiles*).
//!
//! Everything deterministic in a profile — the shard scan/skip/empty
//! counts, the cache verdict, the approximate tier's
//! escalated-partition list — must render byte-identically for
//! identical corpus + query:
//!
//! 1. **Run over run** at every shard count from 1 to 8 (two
//!    independently built engines produce the same profile bytes).
//! 2. **Across shard counts** for the approximate tier: partition keys
//!    are shard-count-invariant because the per-shard bottom-m sketches
//!    merge to exactly the global sample, so the whole `approx` member
//!    (including `escalated_partitions`) is byte-identical at 1–8
//!    shards.
//! 3. The shard counts always reconcile: `scanned + skipped + empty ==
//!    total`, with `total` equal to the configured shard count.
//!
//! Plus the explain-off contract: a request without `"explain":true`
//! returns exactly the bytes it returned before the introspection layer
//! existed — an explained response is the plain response with one
//! `profile` member spliced in, and a stamped trace id changes nothing.

use topk_core::Parallelism;
use topk_service::json::Json;
use topk_service::server::dispatch;
use topk_service::{Engine, EngineConfig};

fn rows(seed: u64) -> Vec<(Vec<String>, f64)> {
    let d = topk_datagen::generate_students(&topk_datagen::StudentConfig {
        n_students: 60,
        n_records: 300,
        zipf_exponent: 0.9,
        seed,
        ..Default::default()
    });
    d.records()
        .iter()
        .map(|r| (r.fields().to_vec(), r.weight()))
        .collect()
}

fn engine(shards: usize, rows: &[(Vec<String>, f64)]) -> Engine {
    let e = Engine::new(EngineConfig {
        parallelism: Parallelism::sequential(),
        shards,
        ..Default::default()
    })
    .expect("engine");
    for chunk in rows.chunks(64) {
        e.ingest(chunk.to_vec()).expect("ingest");
    }
    e
}

/// Dispatch one request line and return the parsed response, asserting
/// it succeeded.
fn ok_response(line: &str, e: &Engine) -> Json {
    let (resp, stop) = dispatch(line, e);
    assert!(!stop, "{line} must not stop the connection");
    let v = topk_service::json::parse(&resp).expect("response parses");
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true), "{resp}");
    v
}

/// Dispatch an explained query and return its `profile` member.
fn profile(line: &str, e: &Engine) -> Json {
    ok_response(line, e)
        .get("profile")
        .cloned()
        .expect("explained response carries a profile")
}

/// The deterministic subset of a rendered profile: every member except
/// the wall-time ones (`stages`, `total_micros`).
fn deterministic(profile: &Json) -> String {
    [
        "query",
        "k",
        "generation",
        "cache",
        "shards",
        "groups",
        "approx",
    ]
    .iter()
    .filter_map(|key| profile.get(key).map(|v| format!("{key}:{v}")))
    .collect::<Vec<_>>()
    .join(",")
}

/// `scanned + skipped + empty == total == configured shard count`.
fn assert_shards_reconcile(profile: &Json, shards: usize) {
    let s = profile.get("shards").expect("miss profile carries shards");
    let field = |name: &str| {
        s.get(name)
            .and_then(Json::as_usize)
            .unwrap_or_else(|| panic!("shards.{name} missing: {s}"))
    };
    assert_eq!(field("total"), shards, "{s}");
    assert_eq!(
        field("scanned") + field("skipped") + field("empty"),
        field("total"),
        "shard counts must reconcile: {s}"
    );
}

#[test]
fn exact_profiles_byte_stable_run_over_run_at_every_shard_count() {
    let rows = rows(0x5EED);
    for shards in [1usize, 2, 3, 4, 8] {
        let (a, b) = (engine(shards, &rows), engine(shards, &rows));
        for line in [
            r#"{"cmd":"topk","k":5,"explain":true}"#,
            r#"{"cmd":"topr","k":5,"explain":true}"#,
        ] {
            let (pa, pb) = (profile(line, &a), profile(line, &b));
            assert_eq!(
                deterministic(&pa),
                deterministic(&pb),
                "profile differs between identical runs at {shards} shard(s)"
            );
            assert_eq!(
                pa.get("cache").and_then(Json::as_str),
                Some("miss"),
                "first query on a fresh engine: {pa}"
            );
            assert_shards_reconcile(&pa, shards);
        }
        // The repeat of an identical query is a cache hit, and a hit
        // profile carries no shard detail (nothing was scanned).
        let hit = profile(r#"{"cmd":"topk","k":5,"explain":true}"#, &a);
        assert_eq!(
            hit.get("cache").and_then(Json::as_str),
            Some("hit"),
            "{hit}"
        );
        assert!(hit.get("shards").is_none(), "{hit}");
    }
}

#[test]
fn approx_profiles_escalation_invariant_across_shard_counts() {
    let rows = rows(0x5EED);
    let mut saw_escalation = false;
    for eps in ["0.05", "0.3"] {
        let line = format!(r#"{{"cmd":"topk","k":5,"approx":{eps},"explain":true}}"#);
        let single = profile(&line, &engine(1, &rows));
        let want = single
            .get("approx")
            .unwrap_or_else(|| panic!("approx member missing: {single}"))
            .to_string();
        assert!(want.contains("\"escalated_partitions\":"), "{want}");
        assert!(want.contains("\"certified\":"), "{want}");
        saw_escalation |= !want.contains("\"escalated_partitions\":[]");
        for shards in [2usize, 3, 4, 8] {
            let p = profile(&line, &engine(shards, &rows));
            assert_eq!(
                p.get("approx").map(Json::to_string),
                Some(want.clone()),
                "approx tier (sample + escalated partitions) must be \
                 byte-identical at {shards} shard(s), eps={eps}"
            );
            assert_shards_reconcile(&p, shards);
        }
    }
    // The sweep must exercise the interesting case, not just empty
    // escalation lists.
    assert!(saw_escalation, "no epsilon escalated any partition");
}

#[test]
fn explain_off_bytes_are_unchanged_and_profiles_drain_fifo() {
    let rows = rows(0x0DD5);
    let e = engine(4, &rows);
    let (plain, _) = dispatch(r#"{"cmd":"topk","k":3}"#, &e);
    assert!(!plain.contains("\"profile\""), "{plain}");
    // A stamped trace id changes nothing about the response bytes.
    let (traced, _) = dispatch(r#"{"cmd":"topk","k":3,"trace":"t-1"}"#, &e);
    assert_eq!(plain, traced);
    // The explained response is the plain response with one `profile`
    // member spliced before the closing brace — the paper-visible
    // answer bytes (groups, weights, ranks) are untouched.
    let (explained, _) = dispatch(r#"{"cmd":"topk","k":3,"explain":true}"#, &e);
    assert!(
        explained.starts_with(&plain[..plain.len() - 1]),
        "explained response must extend the plain bytes:\n{plain}\n{explained}"
    );
    assert!(explained.contains(",\"profile\":{"), "{explained}");

    // Both explained queries above landed in the ring; `profiles`
    // drains them oldest-first, then reports empty.
    let (_, _) = dispatch(r#"{"cmd":"topr","k":2,"explain":true}"#, &e);
    let drained = ok_response(r#"{"cmd":"profiles"}"#, &e)
        .get("profiles")
        .and_then(Json::as_arr)
        .map(<[Json]>::to_vec)
        .expect("profiles array");
    assert_eq!(drained.len(), 2, "{drained:?}");
    assert_eq!(
        drained[0].get("query").and_then(Json::as_str),
        Some("topk"),
        "oldest first"
    );
    assert_eq!(drained[1].get("query").and_then(Json::as_str), Some("topr"));
    let again = ok_response(r#"{"cmd":"profiles"}"#, &e);
    assert_eq!(
        again
            .get("profiles")
            .and_then(Json::as_arr)
            .map(<[Json]>::len),
        Some(0),
        "drain empties the ring: {again}"
    );
}
