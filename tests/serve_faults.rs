//! Fault-injection suite for the resident server (fault matrix:
//! docs/ROBUSTNESS.md).
//!
//! Every scenario injects a fault on the wire against a real loopback
//! [`TestServer`] and then asserts the two robustness invariants:
//! (1) availability — a well-behaved client gets correct answers during
//! and after the fault; (2) durability — after a simulated `kill -9`,
//! journal replay reproduces the surviving ingests byte-identically.

use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

use topk_bench::faults::{
    chaos_deadline_storm, chaos_journal_replay, chaos_memory_pressure, chaos_retry, chaos_shed,
    disconnect_mid_response, flood, send_line_raw, send_truncated, slow_loris, tight_config,
    TestServer,
};
use topk_service::{JournalSet, Metrics, ServerConfig};

/// Abort the whole test process if a scenario wedges (a hung fault test
/// would otherwise stall CI until its global timeout).
fn watchdog(secs: u64) {
    std::thread::spawn(move || {
        let t0 = Instant::now();
        std::thread::sleep(Duration::from_secs(secs));
        eprintln!("serve_faults watchdog fired after {:?}", t0.elapsed());
        std::process::exit(99);
    });
}

#[test]
fn slow_loris_writer_is_deadlined_and_server_stays_up() {
    watchdog(90);
    let ts = TestServer::spawn(tight_config(), None).unwrap();
    // 20 bytes x 50 ms ≈ 1 s of dribbling against a 400 ms read
    // deadline: the server must answer with the timeout envelope (or
    // cut us off) rather than buffer forever.
    let result = slow_loris(&ts.addr, r#"{"cmd":"ping"}"#, Duration::from_millis(50));
    match result {
        Ok(resp) => assert!(resp.contains(r#""code":"timeout""#), "{resp}"),
        Err(e) => assert!(e.contains("closed") || e.contains("read"), "{e}"),
    }
    assert!(
        Metrics::get(&ts.engine.metrics.server_timeouts) >= 1,
        "timeout counter must record the loris"
    );
    // Availability: a fast client is unaffected.
    ts.client().unwrap().ping().unwrap();
    ts.shutdown().unwrap();
}

#[test]
fn truncated_frames_and_garbage_do_not_take_the_server_down() {
    watchdog(90);
    let ts = TestServer::spawn(tight_config(), None).unwrap();
    // Truncated frame: half a JSON object, then a hard close.
    send_truncated(&ts.addr, br#"{"cmd":"ingest","batch":[{"fi"#).unwrap();
    // Garbage bytes with a newline get the structured bad_json envelope.
    let resp = send_line_raw(&ts.addr, &[0xde, 0xad, 0xbe, 0xef, b'{', b'~']).unwrap();
    assert!(resp.contains(r#""code":"bad_json""#), "{resp}");
    // Binary garbage without a newline, then close.
    send_truncated(&ts.addr, &[0u8; 512]).unwrap();
    // The server still answers correct queries afterwards.
    let mut c = ts.client().unwrap();
    c.ingest_batch(&[(vec!["ada lovelace".into()], 1.0)])
        .unwrap();
    let top = c.topk(1).unwrap();
    assert!(top.to_string().contains(r#""rank":1"#), "{top:?}");
    ts.shutdown().unwrap();
}

#[test]
fn mid_response_disconnect_is_survivable() {
    watchdog(90);
    let ts = TestServer::spawn(tight_config(), None).unwrap();
    let mut c = ts.client().unwrap();
    c.ingest_batch(&[
        (vec!["grace hopper".into()], 1.0),
        (vec!["grace  hopper".into()], 1.0),
    ])
    .unwrap();
    // Ask for a real (multi-byte) response, read 1 byte, slam shut.
    disconnect_mid_response(&ts.addr, r#"{"cmd":"topk","k":1}"#, 1).unwrap();
    disconnect_mid_response(&ts.addr, r#"{"cmd":"stats"}"#, 1).unwrap();
    // The engine and other connections are unaffected.
    let top = c.topk(1).unwrap();
    assert_eq!(
        top.get("groups")
            .and_then(topk_service::Json::as_arr)
            .map(|g| g.len()),
        Some(1)
    );
    ts.shutdown().unwrap();
}

#[test]
fn connection_flood_is_shed_with_structured_errors() {
    watchdog(90);
    let ts = TestServer::spawn(
        ServerConfig {
            max_connections: 2,
            ..tight_config()
        },
        None,
    )
    .unwrap();
    let outcome = flood(&ts.addr, 2, 6).unwrap();
    assert!(
        outcome.shed >= 1,
        "cap 2 + 2 hogs must shed extras: {outcome:?}"
    );
    assert_eq!(
        outcome.failed, 0,
        "no connection may fail without an envelope: {outcome:?}"
    );
    assert!(
        Metrics::get(&ts.engine.metrics.server_shed) >= outcome.shed as u64,
        "server_shed_total must count every shed connection"
    );
    // Availability after the flood.
    ts.client().unwrap().ping().unwrap();
    ts.shutdown().unwrap();
}

#[test]
fn half_open_connection_hits_the_idle_timeout() {
    watchdog(90);
    let ts = TestServer::spawn(
        ServerConfig {
            idle_timeout: Duration::from_millis(300),
            ..tight_config()
        },
        None,
    )
    .unwrap();
    // Connect, send nothing. The server must end the connection with
    // the timeout envelope instead of pinning a thread forever.
    let t0 = Instant::now();
    let resp = send_line_raw(&ts.addr, b"");
    // An empty line is skipped, so the connection then idles into the
    // 300 ms deadline; either we see the envelope or a clean close.
    match resp {
        Ok(r) => assert!(r.contains(r#""code":"timeout""#), "{r}"),
        Err(e) => assert!(e.contains("closed"), "{e}"),
    }
    assert!(
        t0.elapsed() < Duration::from_secs(10),
        "idle reap must be prompt, took {:?}",
        t0.elapsed()
    );
    assert!(Metrics::get(&ts.engine.metrics.server_timeouts) >= 1);
    ts.client().unwrap().ping().unwrap();
    ts.shutdown().unwrap();
}

#[test]
fn oversized_requests_get_an_envelope_and_the_connection_survives() {
    watchdog(90);
    let ts = TestServer::spawn(tight_config(), None).unwrap(); // 4 KiB cap
    let mut big = Vec::with_capacity(8192);
    big.extend_from_slice(br#"{"cmd":"ingest","batch":["#);
    while big.len() < 8000 {
        big.extend_from_slice(br#"{"fields":["padding padding padding"]},"#);
    }
    big.extend_from_slice(br#"{"fields":["end"]}]}"#);
    let resp = send_line_raw(&ts.addr, &big).unwrap();
    assert!(resp.contains(r#""code":"too_large""#), "{resp}");
    assert!(Metrics::get(&ts.engine.metrics.server_oversized) >= 1);
    // Nothing of the oversized batch was applied.
    let stats = ts.client().unwrap().stats().unwrap();
    assert_eq!(
        stats.get("records").and_then(topk_service::Json::as_usize),
        Some(0),
        "{stats}"
    );
    ts.shutdown().unwrap();
}

#[test]
fn journal_write_failure_refuses_the_ingest_and_leaves_state_unchanged() {
    watchdog(90);
    let dir = std::env::temp_dir().join(format!("topk_journal_fail_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let jpath = dir.join("fail.wal");
    let _ = std::fs::remove_file(&jpath);
    let ts = TestServer::spawn(tight_config(), Some(&jpath)).unwrap();
    let mut c = ts.client().unwrap();
    c.ingest_batch(&[(vec!["ada lovelace".into()], 1.0)])
        .unwrap();
    let before_topk = ts.engine.query_topk(3).unwrap().to_string();

    // Disk goes bad: every append fails. The ingest must come back as
    // a structured `err:"journal"`, not a dropped connection, and the
    // engine must not apply what it could not make durable.
    ts.engine.journal_set().unwrap().set_fail_appends(true);
    let err = c
        .ingest_batch(&[(vec!["grace hopper".into()], 1.0)])
        .unwrap_err();
    assert!(err.contains("journal"), "{err}");
    assert_eq!(
        Metrics::get(&ts.engine.metrics.journal_errors),
        1,
        "topk_journal_errors_total must count the refusal"
    );
    let stats = c.stats().unwrap();
    assert_eq!(
        stats.get("records").and_then(topk_service::Json::as_usize),
        Some(1),
        "refused ingest must not change the record count: {stats}"
    );
    assert_eq!(
        ts.engine.query_topk(3).unwrap().to_string(),
        before_topk,
        "refused ingest must not change query answers"
    );

    // The disk recovers: ingests flow again and replay sees only the
    // durable entries.
    ts.engine.journal_set().unwrap().set_fail_appends(false);
    c.ingest_batch(&[(vec!["grace hopper".into()], 1.0)])
        .unwrap();
    drop(c);
    ts.shutdown().unwrap();
    let (_, recovery) = JournalSet::open(&jpath, 1).unwrap();
    assert_eq!(
        recovery.rows.len(),
        2,
        "only the two acked rows are durable"
    );
    let _ = std::fs::remove_file(&jpath);
}

#[test]
fn retry_rides_through_overload() {
    watchdog(90);
    let before = topk_obs::Registry::global()
        .counter("topk_client_retries_total")
        .load(Ordering::Relaxed);
    let outcome = chaos_retry().unwrap();
    assert_eq!(outcome.name, "retry");
    let after = topk_obs::Registry::global()
        .counter("topk_client_retries_total")
        .load(Ordering::Relaxed);
    assert!(
        after > before,
        "retry scenario must actually retry: {outcome:?}"
    );
}

#[test]
fn shed_scenario_reports_bounded_overload() {
    watchdog(90);
    let outcome = chaos_shed().unwrap();
    assert_eq!(outcome.name, "shed");
    assert!(outcome.detail.contains("overloaded"), "{outcome:?}");
}

#[test]
fn kill_dash_nine_recovers_byte_identical_state_from_the_journal() {
    watchdog(90);
    let outcome = chaos_journal_replay().unwrap();
    assert_eq!(outcome.name, "journal-replay");
    assert!(outcome.detail.contains("byte-identical"), "{outcome:?}");
}

#[test]
fn over_budget_ingest_is_refused_and_the_gauge_holds_the_line() {
    watchdog(90);
    let outcome = chaos_memory_pressure().unwrap();
    assert_eq!(outcome.name, "memory-pressure");
    assert!(outcome.detail.contains("memory_pressure"), "{outcome:?}");
}

#[test]
fn expired_deadlines_abort_at_admission_without_collateral_damage() {
    watchdog(90);
    let outcome = chaos_deadline_storm().unwrap();
    assert_eq!(outcome.name, "deadline-storm");
    assert!(outcome.detail.contains("deadline_exceeded"), "{outcome:?}");
}
