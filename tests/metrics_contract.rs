//! The metric table in `docs/OBSERVABILITY.md` is a contract, and this
//! test enforces it in both directions against a live exposition:
//!
//! 1. **Documented ⇒ emitted.** Every `topk_*` row of the table must
//!    appear in the Prometheus text of a real engine (journal attached,
//!    served over a socket so the client-side global-registry metrics
//!    register too), with exactly the documented type.
//! 2. **Emitted ⇒ documented.** Every `# TYPE topk_*` line the live
//!    exposition renders must match a table row.
//!
//! Rows may use two placeholders, expanded against the live
//! configuration: `{i}` (a shard index, `0..shards`) and `{w}` (an SLO
//! window label from [`topk_obs::slo::WINDOWS`]). Adding a metric
//! without documenting it — or documenting one that no longer exists —
//! fails tier-1.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use topk_core::Parallelism;
use topk_service::{Client, Engine, EngineConfig, JournalSet, Server};

const SHARDS: usize = 2;

/// `(name-pattern, type)` rows of the markdown metric table.
fn documented_rows() -> Vec<(String, String)> {
    let doc = include_str!("../docs/OBSERVABILITY.md");
    let mut rows = Vec::new();
    for line in doc.lines() {
        // A table row whose first cell is a `topk_...` code literal.
        let Some(rest) = line.strip_prefix("| `topk_") else {
            continue;
        };
        let mut cells = rest.split('|');
        let name = format!(
            "topk_{}",
            cells
                .next()
                .expect("name cell")
                .trim()
                .trim_end_matches('`')
        );
        let kind = cells.next().expect("type cell").trim().to_string();
        assert!(
            matches!(kind.as_str(), "counter" | "gauge" | "histogram"),
            "unknown metric type in doc row: {line}"
        );
        rows.push((name, kind));
    }
    assert!(
        rows.len() >= 30,
        "metric table went missing from docs/OBSERVABILITY.md? found {rows:?}"
    );
    rows
}

/// Expand one documented pattern into the concrete names the live
/// configuration emits.
fn expand(pattern: &str) -> Vec<String> {
    let mut names = vec![pattern.to_string()];
    if pattern.contains("{i}") {
        names = (0..SHARDS)
            .map(|i| pattern.replace("{i}", &i.to_string()))
            .collect();
    }
    if pattern.contains("{w}") {
        names = names
            .iter()
            .flat_map(|n| {
                topk_obs::slo::WINDOWS
                    .iter()
                    .map(|(_, w)| n.replace("{w}", w))
            })
            .collect();
    }
    names
}

/// `name -> type` from `# TYPE` lines of a Prometheus exposition.
fn emitted_types(text: &str) -> BTreeMap<String, String> {
    text.lines()
        .filter_map(|l| l.strip_prefix("# TYPE "))
        .map(|l| {
            let mut it = l.split_whitespace();
            (
                it.next().expect("metric name").to_string(),
                it.next().expect("metric type").to_string(),
            )
        })
        .collect()
}

#[test]
fn metric_table_matches_live_exposition_bidirectionally() {
    // A live engine with every optional metric source active: sharded
    // (per-shard gauges), journal attached (segment-size gauges), and
    // served over a socket so `Client::connect` registers the
    // client-side metrics in the process-global registry.
    let dir = std::env::temp_dir().join("topk_metrics_contract");
    std::fs::create_dir_all(&dir).unwrap();
    let (j0, _) = JournalSet::open(&dir.join("wal"), SHARDS).unwrap();
    j0.truncate_all().unwrap();
    drop(j0);
    let (journal, _) = JournalSet::open(&dir.join("wal"), SHARDS).unwrap();
    let mut engine = Engine::new(EngineConfig {
        parallelism: Parallelism::sequential(),
        shards: SHARDS,
        ..Default::default()
    })
    .unwrap();
    engine.attach_journal(journal);

    let server = Server::bind("127.0.0.1:0", Arc::new(engine)).expect("bind");
    let (addr, handle) = server.spawn();
    let mut c = Client::connect(&addr.to_string()).expect("connect");
    c.ingest_batch(&[(vec!["ada lovelace".into()], 1.0)])
        .unwrap();
    c.topk(1).unwrap();
    let engine_text = c.metrics_text().expect("metrics command");
    c.shutdown().unwrap();
    handle.join().expect("server thread").expect("serve");
    let global_text = topk_obs::Registry::global().prometheus_text();

    let mut live = emitted_types(&engine_text);
    live.extend(emitted_types(&global_text));

    // Documented ⇒ emitted, with the documented type.
    let mut documented: BTreeSet<String> = BTreeSet::new();
    for (pattern, kind) in documented_rows() {
        for name in expand(&pattern) {
            match live.get(&name) {
                None => panic!(
                    "documented metric `{name}` (from `{pattern}`) is not \
                     emitted by the live exposition"
                ),
                Some(t) if *t != kind => panic!(
                    "documented metric `{name}` has type {kind} in the docs \
                     but {t} in the exposition"
                ),
                Some(_) => {}
            }
            documented.insert(name);
        }
    }

    // Emitted ⇒ documented.
    for name in live.keys().filter(|n| n.starts_with("topk_")) {
        assert!(
            documented.contains(name),
            "live exposition emits `{name}` but docs/OBSERVABILITY.md's \
             metric table has no row for it"
        );
    }
}

/// The SLO accounting semantics under overload
/// (docs/OBSERVABILITY.md, *SLOs & health*): a shed request burns
/// error budget — the caller got no answer — while a brownout-degraded
/// answer is `ok:true` and does **not** count against availability
/// (brownout spends accuracy instead of availability).
#[test]
fn sheds_count_against_availability_but_degraded_answers_do_not() {
    use std::time::Duration;
    use topk_service::server::dispatch_full;

    let rows: Vec<(Vec<String>, f64)> = (0..40)
        .map(|i| (vec![format!("slo person {i} alpha")], 1.0))
        .collect();
    // Price the corpus on an unlimited engine, then rebuild with a
    // budget the corpus fits but pressures (past the 80% watermark).
    let probe = Engine::new(EngineConfig {
        parallelism: Parallelism::sequential(),
        ..Default::default()
    })
    .unwrap();
    probe.ingest(rows.clone()).unwrap();
    let resident = probe.overload().total_bytes();
    let engine = Engine::new(EngineConfig {
        parallelism: Parallelism::sequential(),
        memory_budget_bytes: resident + resident / 8,
        ..Default::default()
    })
    .unwrap();
    engine.ingest(rows).unwrap();
    assert!(engine.overload().memory_pressured());

    // A shed is recorded as a zero-latency failure (the accept loop and
    // the admission gate both do exactly this): it must burn budget.
    engine.record_query_outcome(Duration::ZERO, false);
    let w = engine.slo().report().remove(0);
    assert_eq!((w.total, w.errors), (1, 1), "a shed must count as an error");

    // A degraded answer is a success envelope; the connection handler
    // records `info.ok` — so availability must not move.
    let (resp, _, info) = dispatch_full(r#"{"cmd":"topk","k":3}"#, &engine);
    assert!(resp.contains(r#""degraded":true"#), "{resp}");
    assert!(info.is_query && info.ok, "{info:?}");
    engine.record_query_outcome(Duration::from_micros(100), info.ok);
    let w = engine.slo().report().remove(0);
    assert_eq!(
        (w.total, w.errors),
        (2, 1),
        "a degraded-but-answered query must not count as an error"
    );
}
