//! Differential test for brownout degradation (docs/ROBUSTNESS.md,
//! *Overload control*).
//!
//! Asserts the contract that makes brownout safe to ship: a degraded
//! answer is not a novel answer. When memory pressure forces an exact
//! `topk`/`topr` down to the approximate tier, the response must be
//! **byte-identical** to what an explicit `approx` query at the same ε
//! returns — modulo the appended `"degraded":true` marker — and that
//! must hold at every shard count (1, 2, 3, 8), because the byte-level
//! shard invariance is the repo's core invariant and brownout rides the
//! same cache key as explicit approx.
//!
//! Also pins the hysteresis: after pressure clears, the engine keeps
//! degrading for `EXIT_STREAK - 1` more evaluations before exact
//! answers resume, and the resumed exact answer matches an unpressured
//! reference byte for byte.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use topk_core::Parallelism;
use topk_service::overload::{EPSILON_LIGHT, EXIT_STREAK};
use topk_service::server::dispatch;
use topk_service::{Engine, EngineConfig, Metrics};

const WATCHDOG_SECS: u64 = 90;

fn start_watchdog() -> Arc<AtomicBool> {
    let done = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&done);
    std::thread::spawn(move || {
        std::thread::sleep(std::time::Duration::from_secs(WATCHDOG_SECS));
        if !flag.load(Ordering::SeqCst) {
            eprintln!("serve_brownout: watchdog fired after {WATCHDOG_SECS}s, aborting");
            std::process::exit(124);
        }
    });
    done
}

fn rows() -> Vec<(Vec<String>, f64)> {
    let d = topk_datagen::generate_students(&topk_datagen::StudentConfig {
        n_students: 40,
        n_records: 200,
        zipf_exponent: 0.9,
        seed: 0xB20,
        ..Default::default()
    });
    d.records()
        .iter()
        .map(|r| (r.fields().to_vec(), r.weight()))
        .collect()
}

fn engine(shards: usize, budget: u64, rows: &[(Vec<String>, f64)]) -> Engine {
    let e = Engine::new(EngineConfig {
        parallelism: Parallelism::sequential(),
        shards,
        memory_budget_bytes: budget,
        ..Default::default()
    })
    .expect("engine");
    for chunk in rows.chunks(64) {
        e.ingest(chunk.to_vec()).expect("ingest");
    }
    e
}

/// The resident-byte estimate of this corpus, probed on an unlimited
/// engine. `record_bytes` is deliberately deterministic across shard
/// layouts, so one probe prices every shard count.
fn resident_bytes(rows: &[(Vec<String>, f64)]) -> u64 {
    engine(1, 0, rows).overload().total_bytes()
}

/// A budget the corpus *fits* (every ingest admitted) but *pressures*:
/// resident lands between the 80% high watermark and 100%.
fn pressuring_budget(resident: u64) -> u64 {
    resident + resident / 8
}

#[test]
fn degraded_answers_are_byte_identical_to_explicit_approx_at_every_shard_count() {
    let done = start_watchdog();
    let rows = rows();
    let budget = pressuring_budget(resident_bytes(&rows));
    // Reference: an unpressured single-shard engine answering the same
    // queries with *explicit* approx at the brownout ε.
    let reference = engine(1, 0, &rows);
    let approx_line = format!(r#"{{"cmd":"topk","k":5,"approx":{EPSILON_LIGHT}}}"#);
    let (want, _) = dispatch(&approx_line, &reference);
    let approx_topr = format!(r#"{{"cmd":"topr","k":5,"approx":{EPSILON_LIGHT}}}"#);
    let (want_topr, _) = dispatch(&approx_topr, &reference);
    assert!(
        !want.contains(r#""degraded""#),
        "explicit approx must not be marked degraded: {want}"
    );

    for shards in [1usize, 2, 3, 8] {
        let pressured = engine(shards, budget, &rows);
        assert!(
            pressured.overload().memory_pressured(),
            "shards={shards}: corpus must land past the high watermark \
             (resident {} of budget {budget})",
            pressured.overload().total_bytes()
        );
        let (got, _) = dispatch(r#"{"cmd":"topk","k":5}"#, &pressured);
        assert!(
            got.contains(r#""degraded":true"#),
            "shards={shards}: pressured exact query must degrade: {got}"
        );
        assert_eq!(
            got.replacen(r#","degraded":true"#, "", 1),
            want,
            "shards={shards}: degraded topk must be byte-identical to explicit approx"
        );
        let (got_topr, _) = dispatch(r#"{"cmd":"topr","k":5}"#, &pressured);
        assert_eq!(
            got_topr.replacen(r#","degraded":true"#, "", 1),
            want_topr,
            "shards={shards}: degraded topr must be byte-identical to explicit approx"
        );
        assert!(
            Metrics::get(&pressured.metrics.degraded_queries) >= 2,
            "shards={shards}: degraded queries must be counted"
        );
        assert!(
            Metrics::get(&pressured.metrics.brownout_entries) >= 1,
            "shards={shards}: the brownout entry edge must be counted"
        );
    }
    done.store(true, Ordering::SeqCst);
}

#[test]
fn exact_answers_resume_after_pressure_clears_with_hysteresis() {
    let done = start_watchdog();
    let rows = rows();
    let budget = pressuring_budget(resident_bytes(&rows));
    let reference = engine(1, 0, &rows);
    let (want_exact, _) = dispatch(r#"{"cmd":"topk","k":5}"#, &reference);

    for shards in [1usize, 2, 8] {
        let e = engine(shards, budget, &rows);
        let (first, _) = dispatch(r#"{"cmd":"topk","k":5}"#, &e);
        assert!(first.contains(r#""degraded":true"#), "{first}");

        // Pressure clears (the restore/install accounting path): the
        // engine must hold the degraded tier for EXIT_STREAK - 1 more
        // evaluations before flipping back, so a flapping signal cannot
        // thrash the cache between tiers.
        e.overload().reset(&vec![0; shards]);
        for i in 1..EXIT_STREAK {
            let (held, _) = dispatch(r#"{"cmd":"topk","k":5}"#, &e);
            assert!(
                held.contains(r#""degraded":true"#),
                "shards={shards}: calm evaluation {i} of {EXIT_STREAK} must still degrade: {held}"
            );
        }
        let (resumed, _) = dispatch(r#"{"cmd":"topk","k":5}"#, &e);
        assert!(
            !resumed.contains(r#""degraded""#),
            "shards={shards}: exact answers must resume after the calm streak: {resumed}"
        );
        assert_eq!(
            resumed, want_exact,
            "shards={shards}: the resumed exact answer must match an unpressured reference"
        );
        assert!(
            Metrics::get(&e.metrics.brownout_exits) >= 1,
            "shards={shards}: the brownout exit edge must be counted"
        );
    }
    done.store(true, Ordering::SeqCst);
}
