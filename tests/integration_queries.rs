//! Cross-crate integration: query-type consistency (TopK count vs rank vs
//! thresholded) over a generated dataset with a deterministic scorer.

use topk_core::{ThresholdedRankQuery, TopKQuery, TopKRankQuery};
use topk_predicates::student_predicates;
use topk_records::{tokenize_dataset, FieldId, TokenizedRecord};

fn dataset() -> topk_records::Dataset {
    topk_datagen::generate_students(&topk_datagen::StudentConfig {
        n_students: 80,
        n_records: 400,
        ..Default::default()
    })
}

fn scorer(a: &TokenizedRecord, b: &TokenizedRecord) -> f64 {
    let name_sim = topk_text::sim::overlap_coefficient(
        &a.field(FieldId(0)).qgrams3,
        &b.field(FieldId(0)).qgrams3,
    );
    let clean = a.field(FieldId(2)).text == b.field(FieldId(2)).text
        && a.field(FieldId(3)).text == b.field(FieldId(3)).text;
    if clean {
        name_sim - 0.45
    } else {
        -1.0
    }
}

#[test]
fn count_query_shapes() {
    let d = dataset();
    let toks = tokenize_dataset(&d);
    let stack = student_predicates(d.schema());
    let res = TopKQuery::new(4, 3).run(&toks, &stack, &scorer);
    assert!(!res.answers.is_empty() && res.answers.len() <= 3);
    for ans in &res.answers {
        assert_eq!(ans.groups.len(), 4);
        // groups in an answer are disjoint
        let mut all: Vec<u32> = ans.groups.iter().flat_map(|g| g.records.clone()).collect();
        let before = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), before, "answer groups overlap");
    }
    // best answer first
    for w in res.answers.windows(2) {
        assert!(w[0].score >= w[1].score - 1e-9);
    }
}

#[test]
fn rank_query_consistent_with_count_answer() {
    let d = dataset();
    let toks = tokenize_dataset(&d);
    let stack = student_predicates(d.schema());
    let count = TopKQuery::new(3, 1).run(&toks, &stack, &scorer);
    let rank = TopKRankQuery::new(3).run(&toks, &stack);
    // The count answer's heaviest group merges one or more surviving
    // units, so it must weigh at least as much as the heaviest unit —
    // which is exactly the rank query's first entry.
    let top_count = count.answers[0].groups[0].weight;
    let top_rank = rank.entries[0].weight;
    assert!(
        top_count >= top_rank - 1e-6,
        "top count group {top_count} lighter than top rank unit {top_rank}"
    );
    // Note the rank query's upper bounds certify groups that form
    // N-cliques (true duplicate groups always do); they do not bound
    // arbitrary chained merges of the final scorer, so no cross-check of
    // u against final group weights is valid here.
}

#[test]
fn thresholded_query_equals_weight_filter() {
    let d = dataset();
    let toks = tokenize_dataset(&d);
    let stack = student_predicates(d.schema());
    // Pick a threshold from the rank query's answer weights.
    let rank = TopKRankQuery::new(5).run(&toks, &stack);
    let t = rank.entries.last().map(|e| e.weight).unwrap_or(100.0);
    let thresh = ThresholdedRankQuery::new(t).run(&toks, &stack);
    // Every returned entry satisfies the threshold and ordering.
    for e in &thresh.entries {
        assert!(e.weight >= t);
        assert!(e.upper_bound >= e.weight - 1e-9);
    }
    for w in thresh.entries.windows(2) {
        assert!(w[0].weight >= w[1].weight);
    }
    // The rank query's entries at or above t appear in the thresholded
    // answer (same collapse machinery, same certain weights).
    let thresh_reps: std::collections::HashSet<u32> =
        thresh.entries.iter().map(|e| e.rep).collect();
    for e in rank.entries.iter().filter(|e| e.weight >= t) {
        assert!(
            thresh_reps.contains(&e.rep),
            "rank entry (weight {}) missing from thresholded answer",
            e.weight
        );
    }
}

#[test]
fn r_answers_are_distinct_and_plausible() {
    let d = dataset();
    let toks = tokenize_dataset(&d);
    let stack = student_predicates(d.schema());
    let res = TopKQuery::new(2, 4).run(&toks, &stack, &scorer);
    // distinct group compositions across answers
    let mut signatures = std::collections::HashSet::new();
    for ans in &res.answers {
        let mut sig: Vec<Vec<u32>> = ans
            .groups
            .iter()
            .map(|g| {
                let mut r = g.records.clone();
                r.sort_unstable();
                r
            })
            .collect();
        sig.sort();
        assert!(signatures.insert(sig), "duplicate answer returned");
    }
}
