//! Property tests for the batch deduplication API.

use proptest::prelude::*;

use topk_core::deduplicate;
use topk_datagen::{generate_addresses, AddressConfig};
use topk_predicates::{address_predicates, collapse};
use topk_records::{tokenize_dataset, FieldId, TokenizedRecord};

fn scorer(a: &TokenizedRecord, b: &TokenizedRecord) -> f64 {
    let name = topk_text::sim::overlap_coefficient(
        &a.field(FieldId(0)).qgrams3,
        &b.field(FieldId(0)).qgrams3,
    );
    let addr = topk_text::sim::jaccard(&a.field(FieldId(1)).words, &b.field(FieldId(1)).words);
    0.5 * name + 0.5 * addr - 0.5
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Dedup output must be a *coarsening* of the sufficient-predicate
    /// collapse: records collapsed together (certain duplicates) are
    /// never split by the final clustering.
    #[test]
    fn dedup_coarsens_the_collapse(seed in 0u64..200) {
        let data = generate_addresses(&AddressConfig {
            n_entities: 40,
            n_records: 160,
            seed,
            ..Default::default()
        });
        let toks = tokenize_dataset(&data);
        let stack = address_predicates(data.schema());
        let res = deduplicate(&toks, &stack, &scorer, -1.0);

        let refs: Vec<&TokenizedRecord> = toks.iter().collect();
        let weights: Vec<f64> = toks.iter().map(|t| t.weight()).collect();
        for (s_pred, _) in &stack.levels {
            for g in collapse(&refs, &weights, s_pred.as_ref()) {
                for w in g.members.windows(2) {
                    prop_assert!(
                        res.partition.same_group(w[0] as usize, w[1] as usize),
                        "dedup split a certain-duplicate pair"
                    );
                }
            }
        }
    }

    /// Partition shape invariants: covers every record, labels dense
    /// after canonicalization, and non-canopy records stay apart when the
    /// scorer is uniformly negative.
    #[test]
    fn all_negative_scorer_yields_collapse_only(seed in 0u64..200) {
        let data = generate_addresses(&AddressConfig {
            n_entities: 30,
            n_records: 100,
            seed,
            ..Default::default()
        });
        let toks = tokenize_dataset(&data);
        let stack = address_predicates(data.schema());
        let negative = |_: &TokenizedRecord, _: &TokenizedRecord| -1.0;
        let res = deduplicate(&toks, &stack, &negative, -1.0);
        prop_assert!(res.exact);
        prop_assert_eq!(res.partition.len(), toks.len());
        // With nothing positive, groups are exactly the collapse groups.
        let refs: Vec<&TokenizedRecord> = toks.iter().collect();
        let weights: Vec<f64> = toks.iter().map(|t| t.weight()).collect();
        let collapsed = collapse(&refs, &weights, stack.levels[0].0.as_ref());
        prop_assert_eq!(res.partition.group_count(), collapsed.len());
    }
}
